//! Message units, the wait-for relation, and message merging (§3).
//!
//! Every raw value or partial aggregate record crossing an edge is a
//! *message unit*. Unit `u'` **waits for** unit `u` if `u` carries data
//! needed to compute or send `u'`. Theorem 2: under the routing
//! restrictions the wait-for relation is acyclic, so transmissions can be
//! scheduled; [`build_schedule`] verifies this and returns an error if a
//! cycle is ever found (it cannot be under the shared-spanning-tree mode,
//! and does not occur in practice with per-source shortest-path trees).
//!
//! Sending each unit as its own message is correct but wasteful; the
//! per-message header is paid once per message. The paper merges messages
//! greedily: two messages on the same edge merge unless the combined
//! wait-for relation would contain a cycle. "For all our experiments …
//! this algorithm is able to merge all messages along each edge into one"
//! — reproduced by the `messages-per-edge` statistics in the benches.

use std::collections::{BTreeMap, BTreeSet};

use m2m_graph::cycle::topological_order;
use m2m_graph::NodeId;
use m2m_netsim::EnergyModel;

use crate::agg::RAW_VALUE_BYTES;
use crate::edge_opt::{AggGroup, DirectedEdge};
use crate::metrics::{NodeEnergyLedger, RoundCost};
use crate::plan::GlobalPlan;
use crate::spec::AggregationSpec;
use crate::topo::EdgeIdx;

/// What a message unit carries.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitContent {
    /// A raw source value, tagged by the source id.
    Raw(NodeId),
    /// A partial aggregate record, tagged by its continuation group.
    Record(AggGroup),
}

/// One message unit on one directed edge.
#[derive(Clone, Debug, PartialEq)]
pub struct Unit {
    /// The edge the unit crosses.
    pub edge: DirectedEdge,
    /// The payload.
    pub content: UnitContent,
    /// On-air payload size in bytes.
    pub size_bytes: u32,
}

/// An input merged into a record (or into a destination's final result).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Contribution {
    /// Pre-aggregate the raw value of this source here.
    Pre(NodeId),
    /// Merge the record carried by this unit (index into
    /// [`Schedule::units`]).
    FromUnit(usize),
}

/// A transmitted message: one or more units on the same edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// The edge the message crosses.
    pub edge: DirectedEdge,
    /// Indices into [`Schedule::units`].
    pub units: Vec<usize>,
}

/// The full transmission schedule for one round of a plan.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// All message units.
    pub units: Vec<Unit>,
    /// Wait-for arcs `(u, u')`: `u'` waits for `u`.
    pub unit_arcs: Vec<(usize, usize)>,
    /// For each record unit, the inputs merged at the edge tail. Empty for
    /// raw units.
    pub contributions: Vec<Vec<Contribution>>,
    /// Per destination, the inputs to its final evaluation.
    pub destination_inputs: BTreeMap<NodeId, Vec<Contribution>>,
    /// A topological order of the units (proof of Theorem 2 acyclicity).
    pub topo_order: Vec<usize>,
    /// The messages after greedy merging.
    pub messages: Vec<Message>,
    /// Messages per edge, computed once from `messages` at construction
    /// (the schedule is immutable, so this never changes).
    pub per_edge_messages: BTreeMap<DirectedEdge, usize>,
}

impl Schedule {
    /// Number of messages per edge, keyed by edge. The paper's greedy
    /// merger achieves one per edge in all its experiments. Computed once
    /// at construction; this accessor is free.
    pub fn messages_per_edge(&self) -> &BTreeMap<DirectedEdge, usize> {
        &self.per_edge_messages
    }

    /// The largest number of messages any edge needs.
    pub fn max_messages_on_any_edge(&self) -> usize {
        self.per_edge_messages.values().copied().max().unwrap_or(0)
    }

    /// Energy and traffic totals for transmitting this schedule once.
    pub fn round_cost(&self, energy: &EnergyModel) -> RoundCost {
        let mut cost = RoundCost::default();
        for m in &self.messages {
            let body: u32 = m.units.iter().map(|&u| self.units[u].size_bytes).sum();
            cost.tx_uj += energy.tx_cost_uj(body);
            cost.rx_uj += energy.rx_cost_uj(body);
            cost.messages += 1;
            cost.units += m.units.len();
            cost.payload_bytes += u64::from(body);
        }
        cost
    }

    /// Like [`Schedule::round_cost`] but also charges each transmission to
    /// the sender and each reception to the receiver in `ledger` — the
    /// per-node view §1's load-balancing argument needs.
    pub fn charge_round(&self, energy: &EnergyModel, ledger: &mut NodeEnergyLedger) -> RoundCost {
        let mut cost = RoundCost::default();
        for m in &self.messages {
            let body: u32 = m.units.iter().map(|&u| self.units[u].size_bytes).sum();
            let tx = energy.tx_cost_uj(body);
            let rx = energy.rx_cost_uj(body);
            ledger.charge_tx(m.edge.0, tx);
            ledger.charge_rx(m.edge.1, rx);
            cost.tx_uj += tx;
            cost.rx_uj += rx;
            cost.messages += 1;
            cost.units += m.units.len();
            cost.payload_bytes += u64::from(body);
        }
        cost
    }

    /// Energy with the §3 broadcast optimization: "use broadcast to
    /// transmit message units shared by multiple edges". A raw unit a node
    /// forwards on two or more outgoing edges is moved into one local
    /// broadcast heard by all the involved next hops (selective listening
    /// per the paper's footnote); everything else stays unicast.
    pub fn round_cost_with_broadcast(&self, energy: &EnergyModel) -> RoundCost {
        use std::collections::{BTreeMap, BTreeSet};
        // For each (tail, source): which outgoing edges carry the raw?
        let mut raw_fanout: BTreeMap<(NodeId, NodeId), Vec<usize>> = BTreeMap::new();
        for (i, u) in self.units.iter().enumerate() {
            if let UnitContent::Raw(s) = u.content {
                raw_fanout.entry((u.edge.0, s)).or_default().push(i);
            }
        }
        // Units that move into a per-node broadcast (transmitted once).
        let mut broadcast_units: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        let mut broadcast_recipients: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        let mut in_broadcast = vec![false; self.units.len()];
        for ((tail, _), unit_ids) in &raw_fanout {
            if unit_ids.len() < 2 {
                continue;
            }
            // One representative copy in the broadcast payload.
            broadcast_units.entry(*tail).or_default().push(unit_ids[0]);
            let recipients = broadcast_recipients.entry(*tail).or_default();
            for &u in unit_ids {
                in_broadcast[u] = true;
                recipients.insert(self.units[u].edge.1);
            }
        }

        let mut cost = RoundCost::default();
        for (tail, unit_ids) in &broadcast_units {
            let body: u32 = unit_ids.iter().map(|&u| self.units[u].size_bytes).sum();
            let listeners = broadcast_recipients[tail].len();
            cost.tx_uj += energy.tx_cost_uj(body);
            cost.rx_uj += listeners as f64 * energy.rx_cost_uj(body);
            cost.messages += 1;
            cost.units += unit_ids.len();
            cost.payload_bytes += u64::from(body);
        }
        for m in &self.messages {
            let remaining: Vec<usize> = m
                .units
                .iter()
                .copied()
                .filter(|&u| !in_broadcast[u])
                .collect();
            if remaining.is_empty() {
                continue;
            }
            let body: u32 = remaining.iter().map(|&u| self.units[u].size_bytes).sum();
            cost.tx_uj += energy.tx_cost_uj(body);
            cost.rx_uj += energy.rx_cost_uj(body);
            cost.messages += 1;
            cost.units += remaining.len();
            cost.payload_bytes += u64::from(body);
        }
        cost
    }
}

/// Builds the schedule for a plan: enumerates units, derives the wait-for
/// relation and per-record contributions by walking every `(s, d)` pair,
/// verifies acyclicity (Theorem 2), and merges messages greedily.
///
/// Unit enumeration follows the plan's solution slab in
/// [`crate::topo::EdgeIdx`] order — ascending by edge, raws before
/// records within an edge — which is exactly the order the old
/// `BTreeMap` iteration produced, so unit indices (and everything hung
/// off them: arcs, topological order, merging) are unchanged by the
/// dense layout. Unit lookups binary-search within one edge's solution
/// instead of probing a global ordered map.
///
/// Returns an error if the wait-for relation is cyclic, which would make
/// the plan unschedulable.
pub fn build_schedule(spec: &AggregationSpec, plan: &GlobalPlan) -> Result<Schedule, String> {
    let topo = plan.topology();
    let sols = plan.solutions();

    // 1. Enumerate units from the per-edge solutions, recording each
    // edge's first unit index.
    let mut units: Vec<Unit> = Vec::new();
    let mut unit_base: Vec<usize> = Vec::with_capacity(sols.len());
    for sol in sols {
        unit_base.push(units.len());
        for &s in &sol.raw {
            units.push(Unit {
                edge: sol.edge,
                content: UnitContent::Raw(s),
                size_bytes: RAW_VALUE_BYTES,
            });
        }
        for g in &sol.agg {
            let size = spec
                .function(g.destination)
                .expect("destination has a function")
                .partial_record_bytes();
            units.push(Unit {
                edge: sol.edge,
                content: UnitContent::Record(g.clone()),
                size_bytes: size,
            });
        }
    }
    // Within an edge: raws first (sorted), then records (sorted by
    // group), mirroring the enumeration above.
    let raw_unit = |e: EdgeIdx, s: NodeId| -> Option<usize> {
        let sol = &sols[e.index()];
        sol.raw
            .binary_search(&s)
            .ok()
            .map(|pos| unit_base[e.index()] + pos)
    };
    let record_unit = |e: EdgeIdx, d: NodeId, suffix: &[NodeId]| -> Option<usize> {
        let sol = &sols[e.index()];
        sol.agg
            .binary_search_by(|g| (g.destination, &g.suffix[..]).cmp(&(d, suffix)))
            .ok()
            .map(|pos| unit_base[e.index()] + sol.raw.len() + pos)
    };

    // 2. Walk every pair to collect arcs, contributions, and final inputs.
    let mut arcs: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut contributions: Vec<BTreeSet<Contribution>> = vec![BTreeSet::new(); units.len()];
    let mut dest_inputs: BTreeMap<NodeId, BTreeSet<Contribution>> = BTreeMap::new();

    for tree in topo.trees() {
        let s = tree.source();
        for dp in tree.dest_paths() {
            let d = dp.destination();
            if dp.hops().is_empty() {
                // s == d: local contribution only.
                dest_inputs
                    .entry(d)
                    .or_default()
                    .insert(Contribution::Pre(s));
                continue;
            }
            let mut prev: Option<usize> = None;
            let mut raw = true;
            for (e, suffix) in dp.hops() {
                let cur = if raw {
                    if let Some(u) = raw_unit(*e, s) {
                        u
                    } else {
                        let u = record_unit(*e, d, suffix).ok_or_else(|| {
                            let edge = topo.edge(*e);
                            format!("pair ({s}, {d}) uncovered on edge {edge:?}")
                        })?;
                        contributions[u].insert(Contribution::Pre(s));
                        raw = false;
                        u
                    }
                } else {
                    let u = record_unit(*e, d, suffix).ok_or_else(|| {
                        let edge = topo.edge(*e);
                        format!("record for ({s}, {d}) dropped on {edge:?}")
                    })?;
                    if let Some(p) = prev {
                        if p != u {
                            contributions[u].insert(Contribution::FromUnit(p));
                        }
                    }
                    u
                };
                if let Some(p) = prev {
                    if p != cur {
                        arcs.insert((p, cur));
                    }
                }
                prev = Some(cur);
            }
            let last = prev.expect("path has at least one edge");
            let input = if raw {
                Contribution::Pre(s)
            } else {
                Contribution::FromUnit(last)
            };
            dest_inputs.entry(d).or_default().insert(input);
        }
    }

    let unit_arcs: Vec<(usize, usize)> = arcs.into_iter().collect();

    // 3. Theorem 2: the wait-for relation must be acyclic.
    let topo_order = topological_order(units.len(), &unit_arcs)
        .ok_or_else(|| "wait-for cycle among message units".to_string())?;

    // 4. Greedy message merging, edge by edge: first try the paper's
    // common case (all units on the edge in one message); if that creates
    // a cycle at the message level, fall back to incremental merging.
    let messages = merge_messages(&units, &unit_arcs);
    let mut per_edge_messages: BTreeMap<DirectedEdge, usize> = BTreeMap::new();
    for m in &messages {
        *per_edge_messages.entry(m.edge).or_insert(0) += 1;
    }

    Ok(Schedule {
        units,
        unit_arcs,
        contributions: contributions
            .into_iter()
            .map(|set| set.into_iter().collect())
            .collect(),
        destination_inputs: dest_inputs
            .into_iter()
            .map(|(d, set)| (d, set.into_iter().collect()))
            .collect(),
        topo_order,
        messages,
        per_edge_messages,
    })
}

/// Greedily merges units into messages without creating wait-for cycles
/// at the message level.
fn merge_messages(units: &[Unit], unit_arcs: &[(usize, usize)]) -> Vec<Message> {
    // Partition assignment: unit -> message id. Start with singletons.
    let mut assignment: Vec<usize> = (0..units.len()).collect();
    let mut message_count = units.len();

    // Returns true if the message-level graph under `assignment` (with
    // `a` and `b` hypothetically merged) is acyclic.
    let acyclic_with = |assignment: &[usize], merged: Option<(usize, usize)>| -> bool {
        let remap = |m: usize| -> usize {
            match merged {
                Some((a, b)) if m == b => a,
                _ => m,
            }
        };
        let arcs: Vec<(usize, usize)> = unit_arcs
            .iter()
            .map(|&(u, v)| (remap(assignment[u]), remap(assignment[v])))
            .filter(|&(a, b)| a != b)
            .collect();
        topological_order(units.len(), &arcs).is_some()
    };

    // Units per edge, in index order.
    let mut per_edge: BTreeMap<DirectedEdge, Vec<usize>> = BTreeMap::new();
    for (i, u) in units.iter().enumerate() {
        per_edge.entry(u.edge).or_default().push(i);
    }

    for edge_units in per_edge.values() {
        if edge_units.len() < 2 {
            continue;
        }
        // Fast path: merge everything on the edge into the first unit's
        // message in one shot.
        let target = assignment[edge_units[0]];
        let saved = assignment.clone();
        for &u in &edge_units[1..] {
            assignment[u] = target;
        }
        if acyclic_with(&assignment, None) {
            message_count -= edge_units.len() - 1;
            continue;
        }
        // Slow path: incremental greedy merging with cycle checks.
        assignment = saved;
        for i in 1..edge_units.len() {
            let u = edge_units[i];
            for &v in &edge_units[..i] {
                let (a, b) = (assignment[v], assignment[u]);
                if a == b {
                    break;
                }
                if acyclic_with(&assignment, Some((a, b))) {
                    for slot in assignment.iter_mut() {
                        if *slot == b {
                            *slot = a;
                        }
                    }
                    message_count -= 1;
                    break;
                }
            }
        }
    }

    // Freeze messages.
    let mut grouped: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (u, &m) in assignment.iter().enumerate() {
        grouped.entry(m).or_default().push(u);
    }
    debug_assert_eq!(grouped.len(), message_count);
    grouped
        .into_values()
        .map(|unit_ids| Message {
            edge: units[unit_ids[0]].edge,
            units: unit_ids,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    fn build(
        spec: &AggregationSpec,
        mode: RoutingMode,
    ) -> (Network, RoutingTables, GlobalPlan, Schedule) {
        let net = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        let routing = RoutingTables::build(&net, &spec.source_to_destinations(), mode);
        let plan = GlobalPlan::build(&net, spec, &routing);
        let schedule = build_schedule(spec, &plan).expect("schedulable");
        (net, routing, plan, schedule)
    }

    fn spec() -> AggregationSpec {
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(12),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 1.0)]),
        );
        s.add_function(
            NodeId(15),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(2), 1.0)]),
        );
        s
    }

    #[test]
    fn units_match_plan_solutions() {
        let s = spec();
        let (_, _, plan, schedule) = build(&s, RoutingMode::ShortestPathTrees);
        assert_eq!(schedule.units.len(), plan.total_units());
    }

    #[test]
    fn wait_for_is_acyclic_in_both_modes() {
        let s = spec();
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
        ] {
            let (_, _, _, schedule) = build(&s, mode);
            assert_eq!(schedule.topo_order.len(), schedule.units.len());
        }
    }

    #[test]
    fn merging_yields_one_message_per_edge() {
        // The paper: "our approach only sends one message per multicast
        // tree edge" in all experiments.
        let s = spec();
        let (_, _, _, schedule) = build(&s, RoutingMode::ShortestPathTrees);
        assert_eq!(schedule.max_messages_on_any_edge(), 1);
    }

    #[test]
    fn every_destination_has_inputs() {
        let s = spec();
        let (_, _, _, schedule) = build(&s, RoutingMode::ShortestPathTrees);
        assert_eq!(schedule.destination_inputs.len(), 2);
        for inputs in schedule.destination_inputs.values() {
            assert!(!inputs.is_empty());
        }
    }

    #[test]
    fn merged_cost_is_cheaper_than_unmerged() {
        let s = spec();
        let (net, _, _, schedule) = build(&s, RoutingMode::ShortestPathTrees);
        let merged = schedule.round_cost(net.energy());
        // Unmerged: one message per unit.
        let mut unmerged = RoundCost::default();
        for u in &schedule.units {
            unmerged.tx_uj += net.energy().tx_cost_uj(u.size_bytes);
            unmerged.rx_uj += net.energy().rx_cost_uj(u.size_bytes);
            unmerged.messages += 1;
            unmerged.units += 1;
            unmerged.payload_bytes += u64::from(u.size_bytes);
        }
        assert!(merged.total_uj() <= unmerged.total_uj());
        assert!(merged.messages <= unmerged.messages);
        assert_eq!(merged.units, unmerged.units);
        assert_eq!(merged.payload_bytes, unmerged.payload_bytes);
    }

    #[test]
    fn charge_round_matches_totals_and_attributes_per_node() {
        let s = spec();
        let (net, _, _, schedule) = build(&s, RoutingMode::ShortestPathTrees);
        let mut ledger = NodeEnergyLedger::new(net.node_count());
        let charged = schedule.charge_round(net.energy(), &mut ledger);
        let plain = schedule.round_cost(net.energy());
        assert!((charged.total_uj() - plain.total_uj()).abs() < 1e-9);
        assert!((ledger.total_uj() - plain.total_uj()).abs() < 1e-9);
        // Sources transmit, so they carry nonzero energy.
        assert!(ledger.node_total_uj(NodeId(0)) > 0.0);
    }

    #[test]
    fn broadcast_helps_on_wide_fanout() {
        // One source whose raw value fans out to three destinations via
        // three edges from the same relay: broadcast sends it once.
        use m2m_graph::Graph;
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1)); // source -> relay
        for t in [2, 3, 4] {
            g.add_edge(NodeId(1), NodeId(t)); // relay -> dests
        }
        let net = Network::from_graph(g, m2m_netsim::EnergyModel::mica2());
        let mut s = AggregationSpec::new();
        for t in [2u32, 3, 4] {
            s.add_function(
                NodeId(t),
                AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
            );
        }
        let routing = RoutingTables::build(
            &net,
            &s.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(&net, &s, &routing);
        let schedule = build_schedule(&s, &plan).unwrap();
        let unicast = schedule.round_cost(net.energy());
        let broadcast = schedule.round_cost_with_broadcast(net.energy());
        assert!(
            broadcast.total_uj() < unicast.total_uj(),
            "broadcast {:.1} must beat unicast {:.1} on a 3-way fanout",
            broadcast.total_uj(),
            unicast.total_uj()
        );
        assert!(broadcast.messages < unicast.messages);
    }

    #[test]
    fn broadcast_is_identity_without_shared_raws() {
        // A single chain has no multi-edge fanout at any node.
        let mut s = AggregationSpec::new();
        s.add_function(
            NodeId(3),
            AggregateFunction::weighted_sum([(NodeId(0), 1.0)]),
        );
        let (net, _, _, schedule) = {
            let net = Network::with_default_energy(m2m_netsim::Deployment::grid(4, 1, 10.0, 12.0));
            let routing = RoutingTables::build(
                &net,
                &s.source_to_destinations(),
                RoutingMode::ShortestPathTrees,
            );
            let plan = GlobalPlan::build(&net, &s, &routing);
            let schedule = build_schedule(&s, &plan).unwrap();
            (net, routing, plan, schedule)
        };
        let unicast = schedule.round_cost(net.energy());
        let broadcast = schedule.round_cost_with_broadcast(net.energy());
        assert_eq!(unicast, broadcast);
    }

    #[test]
    fn merge_splits_messages_to_break_cycles() {
        // Hand-built wait-for pattern that forbids full per-edge merging:
        // edges A and B each carry two units, with u0(A) → u1(B) and
        // u3(B) → u2(A). Merging each edge into one message creates the
        // message-level cycle A → B → A; the greedy merger must keep at
        // least three messages.
        let edge_a = (NodeId(0), NodeId(1));
        let edge_b = (NodeId(1), NodeId(0));
        let mk = |edge| Unit {
            edge,
            content: UnitContent::Raw(NodeId(9)),
            size_bytes: 4,
        };
        let units = vec![mk(edge_a), mk(edge_b), mk(edge_a), mk(edge_b)];
        let arcs = vec![(0usize, 1usize), (3, 2)];
        let messages = merge_messages(&units, &arcs);
        assert!(
            messages.len() >= 3,
            "cycle must prevent full merging, got {} messages",
            messages.len()
        );
        // And the message-level graph is acyclic.
        let mut message_of = vec![0usize; units.len()];
        for (m, msg) in messages.iter().enumerate() {
            for &u in &msg.units {
                message_of[u] = m;
            }
        }
        let msg_arcs: Vec<(usize, usize)> = arcs
            .iter()
            .map(|&(u, v)| (message_of[u], message_of[v]))
            .filter(|&(a, b)| a != b)
            .collect();
        assert!(
            m2m_graph::cycle::topological_order(messages.len(), &msg_arcs).is_some(),
            "merged message graph must be acyclic"
        );
    }

    #[test]
    fn record_units_have_contributions() {
        let s = spec();
        let (_, _, _, schedule) = build(&s, RoutingMode::ShortestPathTrees);
        for (i, u) in schedule.units.iter().enumerate() {
            match u.content {
                UnitContent::Raw(_) => assert!(schedule.contributions[i].is_empty()),
                UnitContent::Record(_) => {
                    // Every record is either freshly formed (has Pre
                    // contributions) or a continuation (has FromUnit).
                    assert!(
                        !schedule.contributions[i].is_empty(),
                        "record unit {i} has no inputs"
                    );
                }
            }
        }
    }
}
