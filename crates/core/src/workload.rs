//! Workload generators reproducing the paper's experimental setups (§4).
//!
//! The paper controls workloads with three knobs: the number of
//! destinations, the number of sources per destination, and a *dispersion
//! factor* `d ∈ [0, 1]` dictating the hop-distance profile of a
//! destination's sources: "the relative contribution from each hop
//! distance `h` is given by `d^(h−1) / Σ_{h=1}^{H} d^(h−1)`", capturing a
//! destination influenced most by close neighbors. `d = 0` puts every
//! source one hop away; `d = 1` spreads them uniformly over 1…H hops.
//! The network-size experiment (Figure 6) instead draws each destination's
//! sources uniformly from the whole network.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use m2m_graph::NodeId;
use m2m_netsim::Network;

use crate::agg::{AggregateFunction, AggregateKind};
use crate::spec::AggregationSpec;

/// How a destination's sources are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SourceSelection {
    /// The paper's dispersion model: hop distance `h ∈ 1..=max_hops` is
    /// chosen with probability ∝ `dispersion^(h−1)`, then a node uniform
    /// within that hop ring.
    Dispersion {
        /// The dispersion factor `d ∈ [0, 1]`.
        dispersion: f64,
        /// The distance limit `H` within which sources may be chosen
        /// (the paper uses 1–4 hops).
        max_hops: u32,
    },
    /// Sources drawn uniformly from the entire network (Figure 6 setup).
    Uniform,
}

/// Parameters of a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of destination nodes (each gets one aggregation function).
    pub destination_count: usize,
    /// Number of sources per destination.
    pub sources_per_destination: usize,
    /// Source selection model.
    pub selection: SourceSelection,
    /// Aggregation function family used for every destination.
    pub kind: AggregateKind,
    /// RNG seed; the same seed over the same network reproduces the same
    /// workload exactly.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's default shape: dispersion 0.9 over 1–4 hops, weighted
    /// *average* functions — the paper's §2.1 running example, whose
    /// partial record (value + count) is larger than a raw value, which is
    /// exactly the raw-vs-aggregate size asymmetry §2.2 discusses.
    pub fn paper_default(
        destination_count: usize,
        sources_per_destination: usize,
        seed: u64,
    ) -> Self {
        WorkloadConfig {
            destination_count,
            sources_per_destination,
            selection: SourceSelection::Dispersion {
                dispersion: 0.9,
                max_hops: 4,
            },
            kind: AggregateKind::WeightedAverage,
            seed,
        }
    }
}

/// Generates an [`AggregationSpec`] over `network` per `config`.
///
/// Destinations are a uniform sample of nodes. Per destination, sources
/// are drawn per the selection model, excluding the destination itself.
/// Source weights `α_s` are drawn uniformly from `[0.5, 1.5]` — the paper
/// notes weights "may vary depending on distances between sources and
/// destinations"; any per-pair variation exercises the same code paths.
///
/// # Panics
/// Panics if the network is too small for the requested counts.
pub fn generate_workload(network: &Network, config: &WorkloadConfig) -> AggregationSpec {
    let n = network.node_count();
    assert!(
        config.destination_count <= n,
        "requested {} destinations from a {n}-node network",
        config.destination_count
    );
    assert!(
        config.sources_per_destination < n,
        "requested {} sources from a {n}-node network",
        config.sources_per_destination
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut all: Vec<NodeId> = network.nodes().collect();
    all.shuffle(&mut rng);
    let mut destinations: Vec<NodeId> = all[..config.destination_count].to_vec();
    destinations.sort_unstable();

    let mut spec = AggregationSpec::new();
    for &dest in &destinations {
        let sources = match config.selection {
            SourceSelection::Dispersion {
                dispersion,
                max_hops,
            } => pick_dispersed_sources(
                network,
                dest,
                config.sources_per_destination,
                dispersion,
                max_hops,
                &mut rng,
            ),
            SourceSelection::Uniform => {
                let mut candidates: Vec<NodeId> = network.nodes().filter(|&v| v != dest).collect();
                candidates.shuffle(&mut rng);
                candidates[..config.sources_per_destination].to_vec()
            }
        };
        let weights = sources
            .into_iter()
            .map(|s| (s, rng.random_range(0.5..1.5)))
            .collect::<Vec<_>>();
        spec.add_function(dest, AggregateFunction::new(config.kind, weights));
    }
    spec
}

/// Draws `count` distinct sources for `dest` with the dispersion model.
///
/// Hop rings that run out of candidates are dropped from the distribution;
/// if all rings within `max_hops` are exhausted before `count` sources are
/// found, the hop limit is extended outward (this only matters on very
/// small networks).
fn pick_dispersed_sources(
    network: &Network,
    dest: NodeId,
    count: usize,
    dispersion: f64,
    max_hops: u32,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    assert!(
        (0.0..=1.0).contains(&dispersion),
        "dispersion must be in [0, 1]"
    );
    let ring = |h: u32| -> Vec<NodeId> { network.nodes_at_hops(dest, h) };
    let mut rings: Vec<Vec<NodeId>> = (1..=max_hops).map(ring).collect();
    let mut picked = Vec::with_capacity(count);
    let mut extension = max_hops;
    while picked.len() < count {
        // Weight of ring h (1-indexed): d^(h-1); d=0 ⇒ only ring 1.
        let weights: Vec<f64> = rings
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if r.is_empty() {
                    0.0
                } else if i == 0 {
                    1.0
                } else {
                    dispersion.powi(i as i32)
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Either every ring within the limit is exhausted, or the
            // dispersion weights vanish (d = 0 with ring 1 exhausted).
            // Spill to the nearest nonempty ring; extend outward if all
            // rings are empty.
            if let Some(nearest) = rings.iter().position(|r| !r.is_empty()) {
                let ring_nodes = &mut rings[nearest];
                let idx = rng.random_range(0..ring_nodes.len());
                picked.push(ring_nodes.swap_remove(idx));
                continue;
            }
            extension += 1;
            let next = ring(extension);
            assert!(
                extension <= network.node_count() as u32,
                "network too small: cannot find {count} sources for {dest}"
            );
            rings.push(next);
            continue;
        }
        let mut x = rng.random_range(0.0..total);
        let mut chosen = 0;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                chosen = i;
                break;
            }
            x -= w;
        }
        let ring_nodes = &mut rings[chosen];
        let idx = rng.random_range(0..ring_nodes.len());
        picked.push(ring_nodes.swap_remove(idx));
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2m_netsim::Deployment;

    fn gdi() -> Network {
        Network::with_default_energy(Deployment::great_duck_island(5))
    }

    #[test]
    fn generates_requested_shape() {
        let net = gdi();
        let cfg = WorkloadConfig::paper_default(14, 20, 1);
        let spec = generate_workload(&net, &cfg);
        assert_eq!(spec.destination_count(), 14);
        for (_, f) in spec.functions() {
            assert_eq!(f.source_count(), 20);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let net = gdi();
        let cfg = WorkloadConfig::paper_default(10, 15, 77);
        let a = generate_workload(&net, &cfg);
        let b = generate_workload(&net, &cfg);
        let pairs = |s: &AggregationSpec| {
            s.functions()
                .map(|(d, f)| (d, f.sources().collect::<Vec<_>>()))
                .collect::<Vec<_>>()
        };
        assert_eq!(pairs(&a), pairs(&b));
        let c = generate_workload(&net, &WorkloadConfig::paper_default(10, 15, 78));
        assert_ne!(pairs(&a), pairs(&c));
    }

    #[test]
    fn zero_dispersion_keeps_sources_adjacent() {
        let net = gdi();
        let mut cfg = WorkloadConfig::paper_default(8, 3, 3);
        cfg.selection = SourceSelection::Dispersion {
            dispersion: 0.0,
            max_hops: 4,
        };
        let spec = generate_workload(&net, &cfg);
        for (d, f) in spec.functions() {
            for s in f.sources() {
                // With d = 0 sources stay within one hop unless the ring
                // runs out; 3 sources fit in a GDI node's neighborhood for
                // most nodes — allow ring exhaustion to spill to 2 hops.
                assert!(net.hop_distance(d, s).unwrap() <= 2);
            }
        }
    }

    #[test]
    fn high_dispersion_reaches_farther() {
        let net = gdi();
        let far = WorkloadConfig {
            selection: SourceSelection::Dispersion {
                dispersion: 1.0,
                max_hops: 4,
            },
            ..WorkloadConfig::paper_default(10, 20, 9)
        };
        let spec = generate_workload(&net, &far);
        let max_hop = spec
            .functions()
            .flat_map(|(d, f)| {
                f.sources()
                    .map(|s| net.hop_distance(d, s).unwrap())
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap();
        assert!(
            max_hop >= 3,
            "uniform dispersion should reach ≥3 hops, got {max_hop}"
        );
    }

    #[test]
    fn uniform_selection_ignores_distance() {
        let net = gdi();
        let cfg = WorkloadConfig {
            selection: SourceSelection::Uniform,
            ..WorkloadConfig::paper_default(5, 10, 4)
        };
        let spec = generate_workload(&net, &cfg);
        for (d, f) in spec.functions() {
            assert_eq!(f.source_count(), 10);
            assert!(!f.has_source(d), "destination must not be its own source");
        }
    }

    #[test]
    fn sources_exclude_destination_and_are_distinct() {
        let net = gdi();
        let cfg = WorkloadConfig::paper_default(20, 20, 12);
        let spec = generate_workload(&net, &cfg);
        for (d, f) in spec.functions() {
            let sources: Vec<NodeId> = f.sources().collect();
            let mut dedup = sources.clone();
            dedup.dedup();
            assert_eq!(sources, dedup, "duplicate sources for {d}");
            assert!(!f.has_source(d));
        }
    }

    #[test]
    #[should_panic(expected = "destinations")]
    fn oversize_workload_rejected() {
        let net = gdi();
        generate_workload(&net, &WorkloadConfig::paper_default(100, 5, 0));
    }

    #[test]
    fn exhausted_rings_extend_beyond_max_hops() {
        // A long line: only 2 nodes within 1 hop of a middle node, so
        // requesting 6 sources with max_hops=1 must spill outward.
        let net = Network::with_default_energy(m2m_netsim::Deployment::grid(10, 1, 10.0, 12.0));
        let cfg = WorkloadConfig {
            destination_count: 1,
            sources_per_destination: 6,
            selection: SourceSelection::Dispersion {
                dispersion: 0.5,
                max_hops: 1,
            },
            kind: crate::agg::AggregateKind::WeightedSum,
            seed: 3,
        };
        let spec = generate_workload(&net, &cfg);
        let (d, f) = spec.functions().next().unwrap();
        assert_eq!(f.source_count(), 6);
        let max_hop = f
            .sources()
            .map(|s| net.hop_distance(d, s).unwrap())
            .max()
            .unwrap();
        assert!(max_hop > 1, "sources must spill past the 1-hop limit");
    }
}
