//! Cross-build solve memoization (Corollary 1, applied across builds).
//!
//! Corollary 1 says an edge whose single-edge inputs `(S_e, D_e, ∼_e)`
//! are unchanged keeps its solution. [`crate::dynamics`] exploits this
//! *within* one maintained plan; a [`SolveCache`] exploits it *across*
//! independent plan builds — benchmark campaigns, scaled-series sweeps,
//! and baseline comparisons rebuild plans over the same deployment again
//! and again, and most edges recur with identical problems.
//!
//! Soundness: [`crate::edge_opt::solve_edge`] is a pure function of the
//! problem and of the byte sizes the spec assigns (each destination's
//! partial-record size; the raw size is a global constant). The cache
//! therefore keys entries on the hash of the full [`EdgeProblem`] and
//! remembers the record size every cached solve assumed per destination:
//! a later build whose spec assigns a *different* size to any remembered
//! destination clears the cache instead of serving stale solutions,
//! while merely adding or removing destinations (the common campaign
//! shape) keeps every still-valid entry. Per-node tiebreak priorities
//! depend only on node ids, which are part of the problem itself.

use std::collections::{BTreeMap, HashMap};

use m2m_graph::NodeId;

use crate::edge_opt::{solve_edge_batch, DirectedEdge, EdgeProblem, EdgeSolution};
use crate::spec::AggregationSpec;

/// A reusable `EdgeProblem → EdgeSolution` memo shared across plan
/// builds. See the module docs for the soundness argument.
#[derive(Clone, Debug, Default)]
pub struct SolveCache {
    entries: HashMap<EdgeProblem, EdgeSolution>,
    /// The partial-record size each cached solve assumed, per destination.
    record_sizes: BTreeMap<NodeId, u32>,
    hits: u64,
    misses: u64,
}

impl SolveCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached solutions currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no solutions are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh solve since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops all cached solutions (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.record_sizes.clear();
    }

    /// Solves every problem in the batch, serving repeats from the cache
    /// and fanning the misses out over `threads` workers. The returned
    /// map is bit-identical to solving every problem fresh — cached or
    /// not, a problem has exactly one solution (unique minima, §2.3).
    pub fn solve_all(
        &mut self,
        problems: &BTreeMap<DirectedEdge, EdgeProblem>,
        spec: &AggregationSpec,
        threads: usize,
    ) -> BTreeMap<DirectedEdge, EdgeSolution> {
        // Invalidate only when a destination the cache has already seen
        // now has a different record size — cached problems mentioning it
        // would be solved with different weights today.
        let conflict = spec.functions().any(|(d, f)| {
            self.record_sizes
                .get(&d)
                .is_some_and(|&bytes| bytes != f.partial_record_bytes())
        });
        if conflict {
            self.entries.clear();
            self.record_sizes.clear();
        }
        for (d, f) in spec.functions() {
            self.record_sizes.insert(d, f.partial_record_bytes());
        }

        let mut solutions: BTreeMap<DirectedEdge, EdgeSolution> = BTreeMap::new();
        let mut missing: Vec<(DirectedEdge, &EdgeProblem)> = Vec::new();
        for (&edge, problem) in problems {
            match self.entries.get(problem) {
                Some(cached) => {
                    self.hits += 1;
                    solutions.insert(edge, cached.clone());
                }
                None => {
                    self.misses += 1;
                    missing.push((edge, problem));
                }
            }
        }
        let solved = solve_edge_batch(&missing, spec, threads);
        for (&(edge, problem), solution) in missing.iter().zip(&solved) {
            self.entries.insert(problem.clone(), solution.clone());
            solutions.insert(edge, solution.clone());
        }
        solutions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GlobalPlan;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    fn setup() -> (Network, AggregationSpec, RoutingTables) {
        let net = Network::with_default_energy(Deployment::great_duck_island(11));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 10, 5));
        let routing =
            RoutingTables::build(&net, &spec.source_to_destinations(), RoutingMode::ShortestPathTrees);
        (net, spec, routing)
    }

    #[test]
    fn cached_build_matches_uncached() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        let cold = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        let plain = GlobalPlan::build(&net, &spec, &routing);
        assert_eq!(cold.solutions(), plain.solutions());
        assert_eq!(cold.repair_count(), plain.repair_count());
        assert_eq!(cache.hits(), 0);
        assert!(cache.misses() > 0);
    }

    #[test]
    fn second_identical_build_is_all_hits() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        let first = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        let misses_after_first = cache.misses();
        let second = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        assert_eq!(first.solutions(), second.solutions());
        assert_eq!(cache.misses(), misses_after_first, "no new solves");
        assert_eq!(cache.hits(), misses_after_first, "every edge served cached");
    }

    #[test]
    fn overlapping_workload_reuses_shared_edges() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        // Grow the workload: unchanged edges must hit the cache, and the
        // result must still match a fresh build.
        let mut bigger = spec.clone();
        let extra_dest = net
            .nodes()
            .find(|&v| bigger.function(v).is_none())
            .unwrap();
        let sources: Vec<_> = bigger
            .all_sources()
            .into_iter()
            .filter(|&s| s != extra_dest)
            .take(3)
            .map(|s| (s, 1.0))
            .collect();
        bigger.add_function(extra_dest, crate::agg::AggregateFunction::weighted_sum(sources));
        let routing2 = RoutingTables::build(
            &net,
            &bigger.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cached = GlobalPlan::build_cached(&net, &bigger, &routing2, &mut cache);
        let fresh = GlobalPlan::build(&net, &bigger, &routing2);
        assert_eq!(cached.solutions(), fresh.solutions());
        assert!(cache.hits() > 0, "overlapping edges should be served cached");
    }

    #[test]
    fn changed_record_sizes_invalidate_the_cache() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        assert!(!cache.is_empty());
        // A different workload shape ⇒ different destination record sizes
        // ⇒ the fingerprint must not let stale entries survive.
        let other = generate_workload(&net, &WorkloadConfig::paper_default(12, 4, 2));
        let routing3 = RoutingTables::build(
            &net,
            &other.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cached = GlobalPlan::build_cached(&net, &other, &routing3, &mut cache);
        let fresh = GlobalPlan::build(&net, &other, &routing3);
        assert_eq!(cached.solutions(), fresh.solutions());
    }
}
