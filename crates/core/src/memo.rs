//! Cross-build solve memoization (Corollary 1, applied across builds).
//!
//! Corollary 1 says an edge whose single-edge inputs `(S_e, D_e, ∼_e)`
//! are unchanged keeps its solution. [`crate::dynamics`] exploits this
//! *within* one maintained plan; a [`SolveCache`] exploits it *across*
//! independent plan builds — benchmark campaigns, scaled-series sweeps,
//! and baseline comparisons rebuild plans over the same deployment again
//! and again, and most edges recur with identical problems.
//!
//! Soundness: [`crate::edge_opt::solve_edge`] is a pure function of the
//! problem and of the byte sizes the spec assigns (each destination's
//! partial-record size; the raw size is a global constant). The cache
//! keeps its entries aligned with the caller's edge slab — one slot per
//! [`crate::topo::EdgeIdx`] — and remembers the record size every cached
//! solve assumed per destination. A later build whose spec assigns a
//! *different* size to any remembered destination marks that destination
//! dirty in a bitset and drops exactly the entries whose problems
//! mention a dirty destination; entries mentioning only clean
//! destinations would re-solve to the same bits (the solve depends only
//! on the problem and the record sizes of the destinations it names), so
//! keeping them is sound where the old policy — clearing the whole cache
//! — merely wasted them. Per-node tiebreak priorities depend only on
//! node ids, which are part of the problem itself.

use std::collections::{BTreeMap, HashMap};

use m2m_graph::NodeId;

use crate::edge_opt::{solve_edge_batch, DirectedEdge, EdgeProblem, EdgeSolution};
use crate::spec::AggregationSpec;
use crate::topo::BitSet;

/// One cached per-edge solve: the exact problem it answered and its
/// solution. A slot hits only if the stored problem equals the incoming
/// one bit-for-bit.
#[derive(Clone, Debug)]
struct CacheEntry {
    problem: EdgeProblem,
    solution: EdgeSolution,
}

/// A reusable `EdgeProblem → EdgeSolution` memo shared across plan
/// builds, slab-aligned by [`crate::topo::EdgeIdx`]. See the module docs
/// for the soundness argument.
#[derive(Clone, Debug, Default)]
pub struct SolveCache {
    /// The edge of each slot, mirroring the last batch's slab order.
    edges: Vec<DirectedEdge>,
    /// One slot per edge; `None` = never solved or invalidated.
    entries: Vec<Option<CacheEntry>>,
    /// The partial-record size each cached solve assumed, per destination.
    record_sizes: BTreeMap<NodeId, u32>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl SolveCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached solutions currently held.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// True if no solutions are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.is_none())
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh solve since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Record-size invalidations since construction: batches where a
    /// destination the cache had already seen arrived with a different
    /// partial-record size, forcing the entries that mention it out.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Fraction of lookups served from the cache (0.0 when no lookups
    /// have happened yet — an empty history serves nothing).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all cached solutions (counters are kept).
    pub fn clear(&mut self) {
        self.edges.clear();
        self.entries.clear();
        self.record_sizes.clear();
    }

    /// Solves every problem in the batch — one per demanded edge, in
    /// [`crate::topo::EdgeIdx`] order — serving repeats from the cache
    /// and fanning the misses out over `threads` workers. The returned
    /// slab is bit-identical to solving every problem fresh — cached or
    /// not, a problem has exactly one solution (unique minima, §2.3).
    pub fn solve_all(
        &mut self,
        problems: &[EdgeProblem],
        spec: &AggregationSpec,
        threads: usize,
    ) -> Vec<EdgeSolution> {
        // Per-destination dirty bitset: a destination whose remembered
        // record size disagrees with today's spec invalidates exactly the
        // entries that mention it.
        let mut dirty = BitSet::default();
        for (d, f) in spec.functions() {
            if self
                .record_sizes
                .get(&d)
                .is_some_and(|&bytes| bytes != f.partial_record_bytes())
            {
                dirty.insert(d.0 as usize);
            }
        }
        if dirty.any() {
            self.invalidations += 1;
            crate::telemetry::counter(crate::telemetry::names::MEMO_INVALIDATIONS, 1);
            for slot in &mut self.entries {
                let stale = slot.as_ref().is_some_and(|e| {
                    e.problem
                        .groups
                        .iter()
                        .any(|g| dirty.contains(g.destination.0 as usize))
                });
                if stale {
                    *slot = None;
                }
            }
        }
        for (d, f) in spec.functions() {
            self.record_sizes.insert(d, f.partial_record_bytes());
        }

        // Re-align the slots when the topology (and hence the edge slab)
        // changed since the last batch: surviving entries follow their
        // edge to its new index; entries for edges no longer demanded
        // are dropped.
        let aligned = self.edges.len() == problems.len()
            && self.edges.iter().zip(problems).all(|(&e, p)| e == p.edge);
        if !aligned {
            let mut by_edge: HashMap<DirectedEdge, CacheEntry> = self
                .entries
                .drain(..)
                .flatten()
                .map(|e| (e.problem.edge, e))
                .collect();
            self.edges = problems.iter().map(|p| p.edge).collect();
            self.entries = self.edges.iter().map(|e| by_edge.remove(e)).collect();
        }

        // Hit/miss partition, slot by slot.
        let (hits_before, misses_before) = (self.hits, self.misses);
        let mut out: Vec<Option<EdgeSolution>> = Vec::with_capacity(problems.len());
        let mut missing: Vec<(usize, &EdgeProblem)> = Vec::new();
        for (idx, problem) in problems.iter().enumerate() {
            match self.entries[idx].as_ref().filter(|e| e.problem == *problem) {
                Some(entry) => {
                    self.hits += 1;
                    out.push(Some(entry.solution.clone()));
                }
                None => {
                    self.misses += 1;
                    missing.push((idx, problem));
                    out.push(None);
                }
            }
        }
        if crate::telemetry::enabled() {
            use crate::telemetry::names;
            crate::telemetry::counter(names::MEMO_HITS, self.hits - hits_before);
            crate::telemetry::counter(names::MEMO_MISSES, self.misses - misses_before);
        }
        let refs: Vec<&EdgeProblem> = missing.iter().map(|&(_, p)| p).collect();
        let solved = solve_edge_batch(&refs, spec, threads);
        for (&(idx, problem), solution) in missing.iter().zip(&solved) {
            self.entries[idx] = Some(CacheEntry {
                problem: problem.clone(),
                solution: solution.clone(),
            });
            out[idx] = Some(solution.clone());
        }
        out.into_iter()
            .map(|s| s.expect("every slot is filled by a hit or a solve"))
            .collect()
    }
}

/// The content key a [`SharedSolveCache`] stores solves under: the exact
/// single-edge problem plus the partial-record size of every destination
/// the problem names. Those are the *only* inputs
/// [`crate::edge_opt::solve_edge`] reads (the raw size is a global
/// constant and tiebreak priorities are functions of the node ids inside
/// the problem), so two lookups with equal keys must produce bit-equal
/// solutions — even when they come from different tenants' specs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct SharedKey {
    problem: EdgeProblem,
    /// `(destination, partial_record_bytes)` for each destination the
    /// problem's groups name, sorted by destination.
    record_sizes: Vec<(NodeId, u32)>,
}

impl SharedKey {
    fn new(problem: &EdgeProblem, spec: &AggregationSpec) -> Self {
        let record_sizes: BTreeMap<NodeId, u32> = problem
            .groups
            .iter()
            .map(|g| {
                let bytes = spec
                    .function(g.destination)
                    .map(|f| f.partial_record_bytes())
                    .unwrap_or(0);
                (g.destination, bytes)
            })
            .collect();
        SharedKey {
            problem: problem.clone(),
            record_sizes: record_sizes.into_iter().collect(),
        }
    }
}

/// A cross-tenant `EdgeProblem → EdgeSolution` memo for the multi-tenant
/// plan service ([`crate::service`]).
///
/// [`SolveCache`] is slab-aligned: it mirrors *one* maintained plan's
/// edge slab and drops entries whenever the slab realigns — the right
/// shape for rebuilding one plan over and over, and the wrong one for
/// many tenants whose slabs all differ. A `SharedSolveCache` is keyed by
/// problem *content* instead ([`SharedKey`]), so tenant N's admission
/// hits on every edge any earlier tenant already solved with the same
/// single-edge inputs and record sizes, regardless of slab layout. The
/// returned slab is bit-identical to solving fresh (unique minima, §2.3),
/// which is what keeps service tenants bit-identical to isolated
/// sessions.
#[derive(Clone, Debug, Default)]
pub struct SharedSolveCache {
    entries: HashMap<SharedKey, EdgeSolution>,
    hits: u64,
    misses: u64,
}

impl SharedSolveCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached solutions currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no solutions are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh solve since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served from the cache (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all cached solutions (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Solves every problem in the batch — one per demanded edge, in the
    /// caller's slab order — serving content-equal repeats from the cache
    /// and fanning the misses out over `threads` workers. Bit-identical
    /// to [`crate::edge_opt::solve_edge_slab`] on the same inputs.
    pub fn solve_all(
        &mut self,
        problems: &[EdgeProblem],
        spec: &AggregationSpec,
        threads: usize,
    ) -> Vec<EdgeSolution> {
        let (hits_before, misses_before) = (self.hits, self.misses);
        let mut out: Vec<Option<EdgeSolution>> = Vec::with_capacity(problems.len());
        let mut missing: Vec<(usize, SharedKey, &EdgeProblem)> = Vec::new();
        for (idx, problem) in problems.iter().enumerate() {
            let key = SharedKey::new(problem, spec);
            match self.entries.get(&key) {
                Some(solution) => {
                    self.hits += 1;
                    out.push(Some(solution.clone()));
                }
                None => {
                    self.misses += 1;
                    missing.push((idx, key, problem));
                    out.push(None);
                }
            }
        }
        if crate::telemetry::enabled() {
            use crate::telemetry::names;
            crate::telemetry::counter(names::MEMO_HITS, self.hits - hits_before);
            crate::telemetry::counter(names::MEMO_MISSES, self.misses - misses_before);
        }
        let refs: Vec<&EdgeProblem> = missing.iter().map(|&(_, _, p)| p).collect();
        let solved = solve_edge_batch(&refs, spec, threads);
        for ((idx, key, _), solution) in missing.into_iter().zip(solved) {
            out[idx] = Some(solution.clone());
            self.entries.insert(key, solution);
        }
        out.into_iter()
            .map(|s| s.expect("every slot is filled by a hit or a solve"))
            .collect()
    }

    /// Installs an already-known solution for `problem` under `spec`'s
    /// record sizes without counting a lookup — the checkpoint-restore
    /// path ([`crate::service::PlanService::restore`]) uses this to warm
    /// the cache from persisted plan slabs so the first post-restart
    /// admission of a recurring shape hits instead of re-solving.
    pub fn seed(&mut self, problem: &EdgeProblem, spec: &AggregationSpec, solution: EdgeSolution) {
        self.entries.insert(SharedKey::new(problem, spec), solution);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::edge_opt::AggGroup;
    use crate::plan::GlobalPlan;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    /// One hand-built single-edge problem feeding destination `d` from
    /// two sources across the given edge.
    fn tiny_problem_on(edge: DirectedEdge, d: NodeId) -> EdgeProblem {
        let group = AggGroup {
            destination: d,
            suffix: vec![edge.1, d].into(),
        };
        EdgeProblem {
            edge,
            sources: vec![NodeId(0), NodeId(1)],
            groups: vec![group],
            pairs: vec![(0, 0), (1, 0)],
        }
    }

    fn tiny_problem(d: NodeId) -> EdgeProblem {
        tiny_problem_on((NodeId(4), NodeId(5)), d)
    }

    #[test]
    fn hit_rate_is_zero_before_any_lookup() {
        let cache = SolveCache::new();
        assert_eq!(cache.hit_rate(), 0.0, "no lookups: nothing was served");
    }

    #[test]
    fn direct_hit_and_miss_accounting() {
        let d = NodeId(9);
        let mut spec = AggregationSpec::new();
        spec.add_function(
            d,
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        let problems = vec![tiny_problem(d)];

        let mut cache = SolveCache::new();
        assert_eq!(
            (cache.hits(), cache.misses(), cache.invalidations()),
            (0, 0, 0)
        );
        assert_eq!(cache.hit_rate(), 0.0, "no lookups yet");

        let first = cache.solve_all(&problems, &spec, 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1), "cold solve misses");
        assert_eq!(cache.len(), 1);

        let second = cache.solve_all(&problems, &spec, 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1), "repeat is a hit");
        assert_eq!(cache.invalidations(), 0);
        assert_eq!(first, second, "cached result is bit-identical");
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn direct_invalidation_accounting() {
        let d = NodeId(9);
        let mut sum_spec = AggregationSpec::new();
        sum_spec.add_function(
            d,
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        // Same destination, different aggregate kind ⇒ different
        // partial-record size ⇒ remembered entries must be dropped.
        let mut avg_spec = AggregationSpec::new();
        avg_spec.add_function(
            d,
            AggregateFunction::weighted_average([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        assert_ne!(
            sum_spec.function(d).unwrap().partial_record_bytes(),
            avg_spec.function(d).unwrap().partial_record_bytes(),
            "test needs kinds with distinct record sizes"
        );
        let problems = vec![tiny_problem(d)];

        let mut cache = SolveCache::new();
        cache.solve_all(&problems, &sum_spec, 1);
        assert_eq!(cache.len(), 1);
        let solved_avg = cache.solve_all(&problems, &avg_spec, 1);
        assert_eq!(cache.invalidations(), 1, "size conflict drops the entry");
        assert_eq!((cache.hits(), cache.misses()), (0, 2), "re-solve is a miss");
        assert_eq!(
            solved_avg[0],
            crate::edge_opt::solve_edge(&problems[0], &avg_spec)
        );
        // Back to the original sizes: conflicts again (the avg size is
        // now the remembered one).
        cache.solve_all(&problems, &sum_spec, 1);
        assert_eq!(cache.invalidations(), 2);
    }

    #[test]
    fn selective_invalidation_matches_full_resolve() {
        // Two edges: one problem mentions the destination whose record
        // size changes, the other does not. The old policy cleared both;
        // the dirty-bitset policy keeps the clean one — and must still
        // return exactly what a from-scratch solve returns.
        let (d_changed, d_stable) = (NodeId(9), NodeId(11));
        let mk_spec = |avg: bool| {
            let mut spec = AggregationSpec::new();
            let weights = [(NodeId(0), 1.0), (NodeId(1), 1.0)];
            if avg {
                spec.add_function(d_changed, AggregateFunction::weighted_average(weights));
            } else {
                spec.add_function(d_changed, AggregateFunction::weighted_sum(weights));
            }
            spec.add_function(d_stable, AggregateFunction::weighted_sum(weights));
            spec
        };
        let problems = vec![
            tiny_problem_on((NodeId(4), NodeId(5)), d_changed),
            tiny_problem_on((NodeId(5), NodeId(6)), d_stable),
        ];

        let mut cache = SolveCache::new();
        cache.solve_all(&problems, &mk_spec(false), 1);
        assert_eq!(cache.len(), 2);

        let after = cache.solve_all(&problems, &mk_spec(true), 1);
        assert_eq!(cache.invalidations(), 1);
        // Bit-identical to the old full-clear policy's answer: a fresh
        // per-problem solve under the new spec.
        let fresh: Vec<_> = problems
            .iter()
            .map(|p| crate::edge_opt::solve_edge(p, &mk_spec(true)))
            .collect();
        assert_eq!(after, fresh);
        // The refinement: only the entry naming the dirty destination
        // re-solved; the clean one was served from cache.
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let d = NodeId(9);
        let mut spec = AggregationSpec::new();
        spec.add_function(
            d,
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        let problems = vec![tiny_problem(d)];
        let mut cache = SolveCache::new();
        cache.solve_all(&problems, &spec, 1);
        cache.solve_all(&problems, &spec, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(
            (cache.hits(), cache.misses()),
            (1, 1),
            "clear keeps counters"
        );
        cache.solve_all(&problems, &spec, 1);
        assert_eq!(cache.misses(), 2, "cleared entry must be re-solved");
        assert_eq!(
            cache.invalidations(),
            0,
            "explicit clear is not an invalidation"
        );
    }

    fn setup() -> (Network, AggregationSpec, RoutingTables) {
        let net = Network::with_default_energy(Deployment::great_duck_island(11));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 10, 5));
        let routing = RoutingTables::build(
            &net,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        (net, spec, routing)
    }

    #[test]
    fn cached_build_matches_uncached() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        let cold = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        let plain = GlobalPlan::build(&net, &spec, &routing);
        assert_eq!(cold.solutions(), plain.solutions());
        assert_eq!(cold.repair_count(), plain.repair_count());
        assert_eq!(cache.hits(), 0);
        assert!(cache.misses() > 0);
    }

    #[test]
    fn second_identical_build_is_all_hits() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        let first = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        let misses_after_first = cache.misses();
        let second = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        assert_eq!(first.solutions(), second.solutions());
        assert_eq!(cache.misses(), misses_after_first, "no new solves");
        assert_eq!(cache.hits(), misses_after_first, "every edge served cached");
    }

    #[test]
    fn overlapping_workload_reuses_shared_edges() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        // Grow the workload: unchanged edges must hit the cache, and the
        // result must still match a fresh build.
        let mut bigger = spec.clone();
        let extra_dest = net.nodes().find(|&v| bigger.function(v).is_none()).unwrap();
        let sources: Vec<_> = bigger
            .all_sources()
            .into_iter()
            .filter(|&s| s != extra_dest)
            .take(3)
            .map(|s| (s, 1.0))
            .collect();
        bigger.add_function(
            extra_dest,
            crate::agg::AggregateFunction::weighted_sum(sources),
        );
        let routing2 = RoutingTables::build(
            &net,
            &bigger.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cached = GlobalPlan::build_cached(&net, &bigger, &routing2, &mut cache);
        let fresh = GlobalPlan::build(&net, &bigger, &routing2);
        assert_eq!(cached.solutions(), fresh.solutions());
        assert!(
            cache.hits() > 0,
            "overlapping edges should be served cached"
        );
    }

    #[test]
    fn shared_cache_matches_fresh_solves_and_hits_across_slabs() {
        let d = NodeId(9);
        let mut spec = AggregationSpec::new();
        spec.add_function(
            d,
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        // Two slabs that share one problem but disagree on layout — the
        // slab-aligned SolveCache would realign and still hit only when
        // indices line up; the shared cache hits on content.
        let shared = tiny_problem_on((NodeId(4), NodeId(5)), d);
        let only_a = tiny_problem_on((NodeId(5), NodeId(6)), d);
        let slab_a = vec![only_a.clone(), shared.clone()];
        let slab_b = vec![shared.clone()];

        let mut cache = SharedSolveCache::new();
        let got_a = cache.solve_all(&slab_a, &spec, 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 2), "cold slab misses");
        let fresh_a: Vec<_> = slab_a
            .iter()
            .map(|p| crate::edge_opt::solve_edge(p, &spec))
            .collect();
        assert_eq!(got_a, fresh_a, "cached slab is bit-identical to fresh");

        let got_b = cache.solve_all(&slab_b, &spec, 1);
        assert_eq!(
            (cache.hits(), cache.misses()),
            (1, 2),
            "the shared problem hits from a differently laid-out slab"
        );
        assert_eq!(got_b[0], crate::edge_opt::solve_edge(&shared, &spec));
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shared_cache_record_sizes_partition_the_key() {
        let d = NodeId(9);
        let weights = [(NodeId(0), 1.0), (NodeId(1), 1.0)];
        let mut sum_spec = AggregationSpec::new();
        sum_spec.add_function(d, AggregateFunction::weighted_sum(weights));
        let mut avg_spec = AggregationSpec::new();
        avg_spec.add_function(d, AggregateFunction::weighted_average(weights));
        let problems = vec![tiny_problem(d)];

        let mut cache = SharedSolveCache::new();
        let sum_sol = cache.solve_all(&problems, &sum_spec, 1);
        // Same problem, different record size for the named destination:
        // a different key, not a stale hit.
        let avg_sol = cache.solve_all(&problems, &avg_spec, 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2, "both sizes live side by side");
        assert_eq!(
            avg_sol[0],
            crate::edge_opt::solve_edge(&problems[0], &avg_spec)
        );
        // Both shapes now hit — neither evicted the other.
        assert_eq!(cache.solve_all(&problems, &sum_spec, 1), sum_sol);
        assert_eq!(cache.solve_all(&problems, &avg_spec, 1), avg_sol);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn shared_cache_seed_serves_without_a_solve() {
        let d = NodeId(9);
        let mut spec = AggregationSpec::new();
        spec.add_function(
            d,
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        let problems = vec![tiny_problem(d)];
        let solution = crate::edge_opt::solve_edge(&problems[0], &spec);

        let mut cache = SharedSolveCache::new();
        cache.seed(&problems[0], &spec, solution.clone());
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 0), "seeding is free");
        let got = cache.solve_all(&problems, &spec, 1);
        assert_eq!(
            (cache.hits(), cache.misses()),
            (1, 0),
            "restored entry hits"
        );
        assert_eq!(got[0], solution);
    }

    #[test]
    fn changed_record_sizes_invalidate_the_cache() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        assert!(!cache.is_empty());
        // A different workload shape ⇒ different destination record sizes
        // ⇒ the fingerprint must not let stale entries survive.
        let other = generate_workload(&net, &WorkloadConfig::paper_default(12, 4, 2));
        let routing3 = RoutingTables::build(
            &net,
            &other.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cached = GlobalPlan::build_cached(&net, &other, &routing3, &mut cache);
        let fresh = GlobalPlan::build(&net, &other, &routing3);
        assert_eq!(cached.solutions(), fresh.solutions());
    }
}
