//! Cross-build solve memoization (Corollary 1, applied across builds).
//!
//! Corollary 1 says an edge whose single-edge inputs `(S_e, D_e, ∼_e)`
//! are unchanged keeps its solution. [`crate::dynamics`] exploits this
//! *within* one maintained plan; a [`SolveCache`] exploits it *across*
//! independent plan builds — benchmark campaigns, scaled-series sweeps,
//! and baseline comparisons rebuild plans over the same deployment again
//! and again, and most edges recur with identical problems.
//!
//! Soundness: [`crate::edge_opt::solve_edge`] is a pure function of the
//! problem and of the byte sizes the spec assigns (each destination's
//! partial-record size; the raw size is a global constant). The cache
//! therefore keys entries on the hash of the full [`EdgeProblem`] and
//! remembers the record size every cached solve assumed per destination:
//! a later build whose spec assigns a *different* size to any remembered
//! destination clears the cache instead of serving stale solutions,
//! while merely adding or removing destinations (the common campaign
//! shape) keeps every still-valid entry. Per-node tiebreak priorities
//! depend only on node ids, which are part of the problem itself.

use std::collections::{BTreeMap, HashMap};

use m2m_graph::NodeId;

use crate::edge_opt::{solve_edge_batch, DirectedEdge, EdgeProblem, EdgeSolution};
use crate::spec::AggregationSpec;

/// A reusable `EdgeProblem → EdgeSolution` memo shared across plan
/// builds. See the module docs for the soundness argument.
#[derive(Clone, Debug, Default)]
pub struct SolveCache {
    entries: HashMap<EdgeProblem, EdgeSolution>,
    /// The partial-record size each cached solve assumed, per destination.
    record_sizes: BTreeMap<NodeId, u32>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl SolveCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached solutions currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no solutions are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh solve since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whole-cache invalidations since construction: batches where a
    /// destination the cache had already seen arrived with a different
    /// partial-record size, forcing every entry out.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Fraction of lookups served from the cache (1.0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all cached solutions (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.record_sizes.clear();
    }

    /// Solves every problem in the batch, serving repeats from the cache
    /// and fanning the misses out over `threads` workers. The returned
    /// map is bit-identical to solving every problem fresh — cached or
    /// not, a problem has exactly one solution (unique minima, §2.3).
    pub fn solve_all(
        &mut self,
        problems: &BTreeMap<DirectedEdge, EdgeProblem>,
        spec: &AggregationSpec,
        threads: usize,
    ) -> BTreeMap<DirectedEdge, EdgeSolution> {
        // Invalidate only when a destination the cache has already seen
        // now has a different record size — cached problems mentioning it
        // would be solved with different weights today.
        let conflict = spec.functions().any(|(d, f)| {
            self.record_sizes
                .get(&d)
                .is_some_and(|&bytes| bytes != f.partial_record_bytes())
        });
        if conflict {
            self.entries.clear();
            self.record_sizes.clear();
            self.invalidations += 1;
            crate::telemetry::counter(crate::telemetry::names::MEMO_INVALIDATIONS, 1);
        }
        for (d, f) in spec.functions() {
            self.record_sizes.insert(d, f.partial_record_bytes());
        }

        let mut solutions: BTreeMap<DirectedEdge, EdgeSolution> = BTreeMap::new();
        let mut missing: Vec<(DirectedEdge, &EdgeProblem)> = Vec::new();
        let (hits_before, misses_before) = (self.hits, self.misses);
        for (&edge, problem) in problems {
            match self.entries.get(problem) {
                Some(cached) => {
                    self.hits += 1;
                    solutions.insert(edge, cached.clone());
                }
                None => {
                    self.misses += 1;
                    missing.push((edge, problem));
                }
            }
        }
        if crate::telemetry::enabled() {
            use crate::telemetry::names;
            crate::telemetry::counter(names::MEMO_HITS, self.hits - hits_before);
            crate::telemetry::counter(names::MEMO_MISSES, self.misses - misses_before);
        }
        let solved = solve_edge_batch(&missing, spec, threads);
        for (&(edge, problem), solution) in missing.iter().zip(&solved) {
            self.entries.insert(problem.clone(), solution.clone());
            solutions.insert(edge, solution.clone());
        }
        solutions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunction;
    use crate::edge_opt::AggGroup;
    use crate::plan::GlobalPlan;
    use crate::workload::{generate_workload, WorkloadConfig};
    use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

    /// One hand-built single-edge problem feeding destination `d` from
    /// two sources across the edge `4 → 5`.
    fn tiny_problem(d: NodeId) -> (DirectedEdge, EdgeProblem) {
        let edge = (NodeId(4), NodeId(5));
        let group = AggGroup {
            destination: d,
            suffix: vec![NodeId(5), d].into(),
        };
        let problem = EdgeProblem {
            edge,
            sources: vec![NodeId(0), NodeId(1)],
            groups: vec![group],
            pairs: vec![(0, 0), (1, 0)],
        };
        (edge, problem)
    }

    #[test]
    fn direct_hit_and_miss_accounting() {
        let d = NodeId(9);
        let mut spec = AggregationSpec::new();
        spec.add_function(
            d,
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        let (edge, problem) = tiny_problem(d);
        let problems: BTreeMap<_, _> = [(edge, problem)].into();

        let mut cache = SolveCache::new();
        assert_eq!((cache.hits(), cache.misses(), cache.invalidations()), (0, 0, 0));
        assert_eq!(cache.hit_rate(), 1.0, "no lookups yet");

        let first = cache.solve_all(&problems, &spec, 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1), "cold solve misses");
        assert_eq!(cache.len(), 1);

        let second = cache.solve_all(&problems, &spec, 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1), "repeat is a hit");
        assert_eq!(cache.invalidations(), 0);
        assert_eq!(first, second, "cached result is bit-identical");
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn direct_invalidation_accounting() {
        let d = NodeId(9);
        let mut sum_spec = AggregationSpec::new();
        sum_spec.add_function(
            d,
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        // Same destination, different aggregate kind ⇒ different
        // partial-record size ⇒ remembered entries must be dropped.
        let mut avg_spec = AggregationSpec::new();
        avg_spec.add_function(
            d,
            AggregateFunction::weighted_average([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        assert_ne!(
            sum_spec.function(d).unwrap().partial_record_bytes(),
            avg_spec.function(d).unwrap().partial_record_bytes(),
            "test needs kinds with distinct record sizes"
        );
        let (edge, problem) = tiny_problem(d);
        let problems: BTreeMap<_, _> = [(edge, problem)].into();

        let mut cache = SolveCache::new();
        cache.solve_all(&problems, &sum_spec, 1);
        assert_eq!(cache.len(), 1);
        let solved_avg = cache.solve_all(&problems, &avg_spec, 1);
        assert_eq!(cache.invalidations(), 1, "size conflict clears the cache");
        assert_eq!((cache.hits(), cache.misses()), (0, 2), "re-solve is a miss");
        assert_eq!(solved_avg[&edge], crate::edge_opt::solve_edge(&problems[&edge], &avg_spec));
        // Back to the original sizes: conflicts again (the avg size is
        // now the remembered one).
        cache.solve_all(&problems, &sum_spec, 1);
        assert_eq!(cache.invalidations(), 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let d = NodeId(9);
        let mut spec = AggregationSpec::new();
        spec.add_function(
            d,
            AggregateFunction::weighted_sum([(NodeId(0), 1.0), (NodeId(1), 1.0)]),
        );
        let (edge, problem) = tiny_problem(d);
        let problems: BTreeMap<_, _> = [(edge, problem)].into();
        let mut cache = SolveCache::new();
        cache.solve_all(&problems, &spec, 1);
        cache.solve_all(&problems, &spec, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (1, 1), "clear keeps counters");
        cache.solve_all(&problems, &spec, 1);
        assert_eq!(cache.misses(), 2, "cleared entry must be re-solved");
        assert_eq!(cache.invalidations(), 0, "explicit clear is not an invalidation");
    }

    fn setup() -> (Network, AggregationSpec, RoutingTables) {
        let net = Network::with_default_energy(Deployment::great_duck_island(11));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(12, 10, 5));
        let routing =
            RoutingTables::build(&net, &spec.source_to_destinations(), RoutingMode::ShortestPathTrees);
        (net, spec, routing)
    }

    #[test]
    fn cached_build_matches_uncached() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        let cold = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        let plain = GlobalPlan::build(&net, &spec, &routing);
        assert_eq!(cold.solutions(), plain.solutions());
        assert_eq!(cold.repair_count(), plain.repair_count());
        assert_eq!(cache.hits(), 0);
        assert!(cache.misses() > 0);
    }

    #[test]
    fn second_identical_build_is_all_hits() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        let first = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        let misses_after_first = cache.misses();
        let second = GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        assert_eq!(first.solutions(), second.solutions());
        assert_eq!(cache.misses(), misses_after_first, "no new solves");
        assert_eq!(cache.hits(), misses_after_first, "every edge served cached");
    }

    #[test]
    fn overlapping_workload_reuses_shared_edges() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        // Grow the workload: unchanged edges must hit the cache, and the
        // result must still match a fresh build.
        let mut bigger = spec.clone();
        let extra_dest = net
            .nodes()
            .find(|&v| bigger.function(v).is_none())
            .unwrap();
        let sources: Vec<_> = bigger
            .all_sources()
            .into_iter()
            .filter(|&s| s != extra_dest)
            .take(3)
            .map(|s| (s, 1.0))
            .collect();
        bigger.add_function(extra_dest, crate::agg::AggregateFunction::weighted_sum(sources));
        let routing2 = RoutingTables::build(
            &net,
            &bigger.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cached = GlobalPlan::build_cached(&net, &bigger, &routing2, &mut cache);
        let fresh = GlobalPlan::build(&net, &bigger, &routing2);
        assert_eq!(cached.solutions(), fresh.solutions());
        assert!(cache.hits() > 0, "overlapping edges should be served cached");
    }

    #[test]
    fn changed_record_sizes_invalidate_the_cache() {
        let (net, spec, routing) = setup();
        let mut cache = SolveCache::new();
        GlobalPlan::build_cached(&net, &spec, &routing, &mut cache);
        assert!(!cache.is_empty());
        // A different workload shape ⇒ different destination record sizes
        // ⇒ the fingerprint must not let stale entries survive.
        let other = generate_workload(&net, &WorkloadConfig::paper_default(12, 4, 2));
        let routing3 = RoutingTables::build(
            &net,
            &other.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cached = GlobalPlan::build_cached(&net, &other, &routing3, &mut cache);
        let fresh = GlobalPlan::build(&net, &other, &routing3);
        assert_eq!(cached.solutions(), fresh.solutions());
    }
}
