//! Property tests for the vertex-cover kernel: the flow-based solver must
//! match exhaustive search on random weighted instances, and agree with
//! Hopcroft–Karp through König's theorem on unweighted instances.

use m2m_graph::bipartite::BipartiteGraph;
use m2m_graph::matching::hopcroft_karp;
use m2m_graph::vertex_cover::{brute_force_min_cover, min_weight_vertex_cover};
use proptest::prelude::*;

/// A random bipartite instance: side sizes, per-vertex weights, edge mask.
#[derive(Debug, Clone)]
struct Instance {
    left_weights: Vec<u64>,
    right_weights: Vec<u64>,
    edges: Vec<(usize, usize)>,
}

impl Instance {
    fn build(&self) -> BipartiteGraph {
        let mut g = BipartiteGraph::new();
        for &w in &self.left_weights {
            g.add_left(w);
        }
        for &w in &self.right_weights {
            g.add_right(w);
        }
        for &(u, v) in &self.edges {
            g.add_edge(u, v);
        }
        g
    }
}

fn instance_strategy(max_side: usize, max_weight: u64) -> impl Strategy<Value = Instance> {
    (1..=max_side, 1..=max_side).prop_flat_map(move |(nl, nr)| {
        (
            prop::collection::vec(1..=max_weight, nl),
            prop::collection::vec(1..=max_weight, nr),
            prop::collection::vec((0..nl, 0..nr), 0..=(nl * nr).min(24)),
        )
            .prop_map(|(left_weights, right_weights, edges)| Instance {
                left_weights,
                right_weights,
                edges,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The flow-based solver returns a valid cover with the same weight as
    /// exhaustive search.
    #[test]
    fn flow_cover_matches_brute_force(inst in instance_strategy(6, 9)) {
        let g = inst.build();
        let fast = min_weight_vertex_cover(&g);
        let slow = brute_force_min_cover(&g);
        prop_assert!(fast.is_valid_cover(&g));
        prop_assert_eq!(fast.weight, slow.weight);
    }

    /// König: with unit weights, min cover size == max matching size.
    #[test]
    fn koenig_duality_holds(inst in instance_strategy(8, 1)) {
        let g = inst.build();
        let cover = min_weight_vertex_cover(&g);
        let nl = g.left_count();
        let mut adj = vec![Vec::new(); nl];
        for &(u, v) in g.edges() {
            adj[u].push(v);
        }
        let matching = hopcroft_karp(nl, g.right_count(), &adj);
        prop_assert_eq!(cover.weight as usize, matching.size());
    }

    /// The cover never costs more than either trivial cover: all-left
    /// (pure multicast) or all-right (pure aggregation). This is the §2.2
    /// guarantee that *optimal* dominates both baselines per edge.
    #[test]
    fn cover_beats_both_trivial_covers(inst in instance_strategy(6, 9)) {
        let g = inst.build();
        let cover = min_weight_vertex_cover(&g);
        // Only vertices with at least one incident edge need counting:
        // the trivial covers need not include isolated vertices.
        let mut left_touched = vec![false; g.left_count()];
        let mut right_touched = vec![false; g.right_count()];
        for &(u, v) in g.edges() {
            left_touched[u] = true;
            right_touched[v] = true;
        }
        let all_left: u64 = (0..g.left_count())
            .filter(|&u| left_touched[u])
            .map(|u| g.left_weight(u))
            .sum();
        let all_right: u64 = (0..g.right_count())
            .filter(|&v| right_touched[v])
            .map(|v| g.right_weight(v))
            .sum();
        prop_assert!(cover.weight <= all_left);
        prop_assert!(cover.weight <= all_right);
    }

    /// Determinism: solving the same instance twice gives the same cover.
    #[test]
    fn solver_is_deterministic(inst in instance_strategy(6, 9)) {
        let g = inst.build();
        let a = min_weight_vertex_cover(&g);
        let b = min_weight_vertex_cover(&g);
        prop_assert_eq!(a, b);
    }
}
