//! Property tests for the paper's Appendix A, Lemma 1 — the monotonicity
//! facts about minimum vertex covers that the Theorem 1 proof is built on:
//!
//! * **(A)** adding destination vertices `Y` (with any edges `F` between
//!   `U` and `Y`) never *evicts* a source vertex from the minimum cover:
//!   `u ∈ mvc(U, V, E) ⇒ u ∈ mvc(U, V∪Y, E∪F)`;
//! * **(B)** removing source vertices `X` (with their edges) never evicts
//!   a remaining source vertex:
//!   `u ∈ mvc(U∪X, V, E∪F) ⇒ u ∈ mvc(U, V, E)` for `u ∈ U`.
//!
//! The lemma requires *unique* minima; we generate instances with random
//! weights and discard draws whose minimum cover is not unique (checked
//! exhaustively), exactly mirroring the paper's tiebreaker assumption.

use m2m_graph::bipartite::BipartiteGraph;
use m2m_graph::vertex_cover::{min_weight_vertex_cover, CoverSolution};
use proptest::prelude::*;

/// Exhaustively checks whether the instance has a unique minimum cover;
/// returns the unique solution if so.
fn unique_min_cover(g: &BipartiteGraph) -> Option<CoverSolution> {
    let nl = g.left_count();
    let nr = g.right_count();
    let total = nl + nr;
    assert!(total <= 16);
    let mut best_weight = u64::MAX;
    let mut best_count = 0usize;
    let mut best: Option<(Vec<usize>, Vec<usize>)> = None;
    for mask in 0u32..(1 << total) {
        let in_left = |u: usize| mask & (1 << u) != 0;
        let in_right = |v: usize| mask & (1 << (nl + v)) != 0;
        if !g.edges().iter().all(|&(u, v)| in_left(u) || in_right(v)) {
            continue;
        }
        let weight: u64 = (0..nl)
            .filter(|&u| in_left(u))
            .map(|u| g.left_weight(u))
            .chain((0..nr).filter(|&v| in_right(v)).map(|v| g.right_weight(v)))
            .sum();
        match weight.cmp(&best_weight) {
            std::cmp::Ordering::Less => {
                best_weight = weight;
                best_count = 1;
                best = Some((
                    (0..nl).filter(|&u| in_left(u)).collect(),
                    (0..nr).filter(|&v| in_right(v)).collect(),
                ));
            }
            std::cmp::Ordering::Equal => best_count += 1,
            std::cmp::Ordering::Greater => {}
        }
    }
    if best_count == 1 {
        let (left, right) = best.expect("a cover always exists");
        Some(CoverSolution {
            left,
            right,
            weight: best_weight,
        })
    } else {
        None
    }
}

#[derive(Debug, Clone)]
struct Lemma1Instance {
    base_left: Vec<u64>,
    base_right: Vec<u64>,
    base_edges: Vec<(usize, usize)>,
    extra_right: Vec<u64>,
    extra_edges: Vec<(usize, usize)>, // (left, extra-right index)
    extra_left: Vec<u64>,
    extra_left_edges: Vec<(usize, usize)>, // (extra-left index, right)
}

fn instance_strategy() -> impl Strategy<Value = Lemma1Instance> {
    (2usize..5, 2usize..5, 1usize..3, 1usize..3).prop_flat_map(|(nl, nr, ny, nx)| {
        (
            prop::collection::vec(1u64..50, nl),
            prop::collection::vec(1u64..50, nr),
            prop::collection::vec((0..nl, 0..nr), 1..=(nl * nr).min(8)),
            prop::collection::vec(1u64..50, ny),
            prop::collection::vec((0..nl, 0..ny), 0..=(nl * ny).min(6)),
            prop::collection::vec(1u64..50, nx),
            prop::collection::vec((0..nx, 0..nr), 0..=(nx * nr).min(6)),
        )
            .prop_map(|(bl, br, be, er, ee, el, ele)| Lemma1Instance {
                base_left: bl,
                base_right: br,
                base_edges: be,
                extra_right: er,
                extra_edges: ee,
                extra_left: el,
                extra_left_edges: ele,
            })
    })
}

fn build_base(inst: &Lemma1Instance) -> BipartiteGraph {
    let mut g = BipartiteGraph::new();
    for &w in &inst.base_left {
        g.add_left(w);
    }
    for &w in &inst.base_right {
        g.add_right(w);
    }
    for &(u, v) in &inst.base_edges {
        g.add_edge(u, v);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Lemma 1(A): adding destination vertices cannot evict a source
    /// vertex from the (unique) minimum cover.
    #[test]
    fn lemma_1a_sources_survive_added_destinations(inst in instance_strategy()) {
        let base = build_base(&inst);
        // Extended graph: base + Y destination vertices + F edges.
        let mut ext = build_base(&inst);
        let y0 = ext.right_count();
        for &w in &inst.extra_right {
            ext.add_right(w);
        }
        for &(u, y) in &inst.extra_edges {
            ext.add_edge(u, y0 + y);
        }
        // The lemma's hypothesis requires unique minima on both.
        let (Some(base_min), Some(ext_min)) = (unique_min_cover(&base), unique_min_cover(&ext))
        else {
            return Ok(()); // tie — outside the lemma's hypothesis
        };
        for &u in &base_min.left {
            prop_assert!(
                ext_min.left.contains(&u),
                "source {u} evicted by added destinations: {base_min:?} -> {ext_min:?}"
            );
        }
        // The flow solver agrees with brute force on both instances.
        prop_assert_eq!(min_weight_vertex_cover(&base).weight, base_min.weight);
        prop_assert_eq!(min_weight_vertex_cover(&ext).weight, ext_min.weight);
    }

    /// Lemma 1(B): removing source vertices cannot evict a remaining
    /// source vertex from the (unique) minimum cover.
    #[test]
    fn lemma_1b_sources_survive_removed_sources(inst in instance_strategy()) {
        let base = build_base(&inst);
        // Extended graph: base + X source vertices + F edges to V.
        let mut ext = build_base(&inst);
        let x0 = ext.left_count();
        for &w in &inst.extra_left {
            ext.add_left(w);
        }
        for &(x, v) in &inst.extra_left_edges {
            ext.add_edge(x0 + x, v);
        }
        let (Some(base_min), Some(ext_min)) = (unique_min_cover(&base), unique_min_cover(&ext))
        else {
            return Ok(());
        };
        // Going from the extended graph down to the base: original
        // sources chosen in ext stay chosen in base.
        for &u in &ext_min.left {
            if u < x0 {
                prop_assert!(
                    base_min.left.contains(&u),
                    "source {u} evicted by removing sources: {ext_min:?} -> {base_min:?}"
                );
            }
        }
    }
}
