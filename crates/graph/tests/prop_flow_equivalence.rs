//! Differential testing of the two max-flow implementations: Dinic (the
//! vertex-cover kernel's engine) and push–relabel must agree on random
//! networks, and both must match the brute-force min cut on small ones.

use m2m_graph::maxflow::FlowNetwork;
use m2m_graph::push_relabel::{push_relabel_max_flow, CapArc};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomNetwork {
    n: usize,
    arcs: Vec<(usize, usize, u64)>,
}

fn network_strategy(max_n: usize) -> impl Strategy<Value = RandomNetwork> {
    (2..=max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n, 1u64..50), 0..n * 3)
            .prop_map(move |arcs| RandomNetwork { n, arcs })
    })
}

fn dinic_value(net: &RandomNetwork) -> u64 {
    let mut flow = FlowNetwork::new(net.n);
    for &(u, v, c) in &net.arcs {
        if u != v {
            flow.add_arc(u, v, c);
        }
    }
    flow.max_flow(0, net.n - 1)
}

fn push_relabel_value(net: &RandomNetwork) -> u64 {
    let arcs: Vec<CapArc> = net
        .arcs
        .iter()
        .map(|&(from, to, cap)| CapArc { from, to, cap })
        .collect();
    push_relabel_max_flow(net.n, &arcs, 0, net.n - 1)
}

/// Exhaustive min-cut over all source-side subsets (s inside, t outside).
fn brute_force_min_cut(net: &RandomNetwork) -> u64 {
    let n = net.n;
    assert!(n <= 12);
    let s = 0usize;
    let t = n - 1;
    let mut best = u64::MAX;
    for mask in 0u32..(1 << n) {
        if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
            continue;
        }
        let cut: u64 = net
            .arcs
            .iter()
            .filter(|&&(u, v, _)| u != v && mask & (1 << u) != 0 && mask & (1 << v) == 0)
            .map(|&(_, _, c)| c)
            .sum();
        best = best.min(cut);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The two implementations agree on arbitrary networks.
    #[test]
    fn dinic_equals_push_relabel(net in network_strategy(14)) {
        prop_assert_eq!(dinic_value(&net), push_relabel_value(&net));
    }

    /// Max-flow equals min-cut (both implementations) on small networks.
    #[test]
    fn max_flow_min_cut_duality(net in network_strategy(9)) {
        let cut = brute_force_min_cut(&net);
        prop_assert_eq!(dinic_value(&net), cut);
        prop_assert_eq!(push_relabel_value(&net), cut);
    }
}
