//! Property tests for the traversal and tree substrates.

use m2m_graph::adjacency::Graph;
use m2m_graph::bfs::bfs_distances;
use m2m_graph::dijkstra::dijkstra;
use m2m_graph::node::NodeId;
use m2m_graph::spt::ShortestPathTree;
use proptest::prelude::*;

/// Random simple graph on `n` nodes from an edge-pair list.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n), 0..n * 3).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Dijkstra with unit weights equals BFS hop distances.
    #[test]
    fn dijkstra_unit_matches_bfs(g in graph_strategy(24)) {
        let sp = dijkstra(&g, NodeId(0), |_, _| 1);
        let hops = bfs_distances(&g, NodeId(0));
        for v in g.nodes() {
            prop_assert_eq!(sp.dist[v.index()].map(|d| d as u32), hops[v.index()]);
        }
    }

    /// BFS distances satisfy the triangle property across every edge:
    /// |d(u) − d(v)| ≤ 1 for neighbors u, v.
    #[test]
    fn bfs_distance_is_1_lipschitz_on_edges(g in graph_strategy(24)) {
        let d = bfs_distances(&g, NodeId(0));
        for (a, b) in g.edges() {
            if let (Some(da), Some(db)) = (d[a.index()], d[b.index()]) {
                prop_assert!(da.abs_diff(db) <= 1);
            } else {
                // Neighbors are reachable together or not at all.
                prop_assert!(d[a.index()].is_none() && d[b.index()].is_none());
            }
        }
    }

    /// Shortest-path-tree paths have length equal to the BFS distance, and
    /// every hop is a real graph edge.
    #[test]
    fn spt_paths_are_shortest_and_real(g in graph_strategy(24)) {
        let spt = ShortestPathTree::build(&g, NodeId(0));
        let d = bfs_distances(&g, NodeId(0));
        for v in g.nodes() {
            match spt.path_to(v) {
                Some(path) => {
                    prop_assert_eq!(Some((path.len() - 1) as u32), d[v.index()]);
                    for hop in path.windows(2) {
                        prop_assert!(g.has_edge(hop[0], hop[1]));
                    }
                }
                None => prop_assert!(d[v.index()].is_none()),
            }
        }
    }

    /// Pruning to targets keeps exactly the union of root→target paths.
    #[test]
    fn pruned_tree_equals_path_union(g in graph_strategy(16), picks in prop::collection::vec(0usize..16, 1..5)) {
        let spt = ShortestPathTree::build(&g, NodeId(0));
        let n = g.node_count();
        let targets: Vec<NodeId> = picks.into_iter().filter(|&p| p < n).map(NodeId::from_index).collect();
        prop_assume!(!targets.is_empty());
        let mt = spt.prune_to(&targets);
        let mut expected: Vec<NodeId> = Vec::new();
        for &t in &targets {
            if let Some(p) = spt.path_to(t) {
                expected.extend(p);
            }
        }
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(mt.nodes(), &expected[..]);
        // Tree invariant: edges = nodes − 1 when nonempty.
        if !mt.nodes().is_empty() {
            prop_assert_eq!(mt.edges().count(), mt.size() - 1);
        }
    }
}
