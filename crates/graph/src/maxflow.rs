//! Dinic maximum flow on integer capacities.
//!
//! The single-edge optimization of §2.2 reduces minimum-weight bipartite
//! vertex cover to a minimum s–t cut, which we obtain from a max flow. The
//! paper cites standard network-flow techniques [Ahuja–Magnanti–Orlin];
//! Dinic's algorithm is the usual choice and runs in `O(E·√V)` on the unit
//! networks that arise here.
//!
//! The optimizer solves one small flow problem per multicast edge —
//! thousands per plan build — so the network is built to be **reused**:
//! [`FlowNetwork::reset`] rewinds an instance to an empty `n`-vertex
//! network while keeping every internal allocation (arc pool, adjacency
//! lists, BFS/DFS scratch), and the traversal buffers live in the struct
//! so repeated solves allocate nothing in the steady state.

use std::collections::VecDeque;

/// Capacity value treated as unbounded. Large enough that no sum of real
/// capacities can reach it, small enough that additions cannot overflow.
pub const INF: u64 = u64::MAX / 4;

/// Work counters from the most recent [`FlowNetwork::max_flow`] run.
///
/// The graph crate stays dependency-free, so it does not talk to the
/// telemetry facade itself; callers that want Dinic effort attributed
/// (the plan optimizer) read these via [`FlowNetwork::last_flow_stats`]
/// and emit them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Number of BFS level-graph phases (outer Dinic iterations).
    pub bfs_phases: u64,
    /// Number of augmenting paths pushed across all phases.
    pub augmenting_paths: u64,
}

#[derive(Clone, Debug)]
struct Arc {
    to: usize,
    cap: u64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// A flow network under construction / after a max-flow run.
///
/// Reusable: [`FlowNetwork::reset`] clears the network for a new problem
/// without releasing buffers.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    arcs: Vec<Arc>,
    head: Vec<Vec<usize>>, // per-vertex arc indices
    /// Number of live vertices (`head[..n]` are valid). `head` itself only
    /// ever grows so its inner `Vec`s keep their capacity across resets.
    n: usize,
    // Traversal scratch, reused across max_flow/reachability calls.
    level: Vec<i32>,
    iter: Vec<usize>,
    queue: VecDeque<usize>,
    /// Work counters from the most recent `max_flow` call.
    stats: FlowStats,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no arcs.
    pub fn new(n: usize) -> Self {
        let mut net = FlowNetwork::default();
        net.reset(n);
        net
    }

    /// Rewinds to an empty network with `n` vertices, keeping all internal
    /// allocations for reuse.
    pub fn reset(&mut self, n: usize) {
        self.arcs.clear();
        let live = n.min(self.head.len());
        for adj in self.head.iter_mut().take(live) {
            adj.clear();
        }
        if self.head.len() < n {
            self.head.resize_with(n, Vec::new);
        }
        self.n = n;
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Adds a directed arc `from → to` with the given capacity and returns
    /// its handle (usable with [`FlowNetwork::flow_on`]).
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u64) -> usize {
        assert!(from < self.n && to < self.n, "arc endpoint out of range");
        let a = self.arcs.len();
        let b = a + 1;
        self.arcs.push(Arc { to, cap, rev: b });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            rev: a,
        });
        self.head[from].push(a);
        self.head[to].push(b);
        a
    }

    /// Flow currently routed through the arc returned by `add_arc`.
    pub fn flow_on(&self, arc: usize) -> u64 {
        // Flow pushed equals the residual capacity accumulated on the
        // reverse arc.
        self.arcs[self.arcs[arc].rev].cap
    }

    /// Fills `self.level` with BFS levels; true if `t` is reachable.
    fn bfs_levels(&mut self, s: usize, t: usize) -> bool {
        self.level.clear();
        self.level.resize(self.n, -1);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push_back(s);
        while let Some(u) = self.queue.pop_front() {
            for k in 0..self.head[u].len() {
                let ai = self.head[u][k];
                let (to, cap) = (self.arcs[ai].to, self.arcs[ai].cap);
                if cap > 0 && self.level[to] < 0 {
                    self.level[to] = self.level[u] + 1;
                    self.queue.push_back(to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: u64,
        level: &[i32],
        iter: &mut [usize],
    ) -> u64 {
        if u == t {
            return pushed;
        }
        while iter[u] < self.head[u].len() {
            let ai = self.head[u][iter[u]];
            let (to, cap) = {
                let arc = &self.arcs[ai];
                (arc.to, arc.cap)
            };
            if cap > 0 && level[to] == level[u] + 1 {
                let d = self.dfs_push(to, t, pushed.min(cap), level, iter);
                if d > 0 {
                    self.arcs[ai].cap -= d;
                    let rev = self.arcs[ai].rev;
                    self.arcs[rev].cap += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Computes the maximum s→t flow, mutating residual capacities.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        self.stats = FlowStats::default();
        let mut total = 0u64;
        // The scratch vectors are moved out for the duration of the phase
        // so the recursive DFS can borrow `self` mutably alongside them.
        let mut level = std::mem::take(&mut self.level);
        let mut iter = std::mem::take(&mut self.iter);
        loop {
            self.level = level;
            if !self.bfs_levels(s, t) {
                level = std::mem::take(&mut self.level);
                break;
            }
            level = std::mem::take(&mut self.level);
            self.stats.bfs_phases += 1;
            iter.clear();
            iter.resize(self.n, 0);
            loop {
                let pushed = self.dfs_push(s, t, INF, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                self.stats.augmenting_paths += 1;
                total += pushed;
            }
        }
        self.level = level;
        self.iter = iter;
        total
    }

    /// Work counters from the most recent [`FlowNetwork::max_flow`] run
    /// (zeroes if `max_flow` has never been called).
    pub fn last_flow_stats(&self) -> FlowStats {
        self.stats
    }

    /// Vertices reachable from `s` in the residual graph, written into
    /// `seen` (resized to the vertex count). After
    /// [`FlowNetwork::max_flow`], this is the source side of the
    /// *canonical* (source-minimal) minimum cut — a deterministic choice
    /// among all minimum cuts, which is what makes the extracted vertex
    /// covers reproducible.
    pub fn residual_reachable_into(&mut self, s: usize, seen: &mut Vec<bool>) {
        seen.clear();
        seen.resize(self.n, false);
        self.queue.clear();
        seen[s] = true;
        self.queue.push_back(s);
        while let Some(u) = self.queue.pop_front() {
            for k in 0..self.head[u].len() {
                let ai = self.head[u][k];
                let (to, cap) = (self.arcs[ai].to, self.arcs[ai].cap);
                if cap > 0 && !seen[to] {
                    seen[to] = true;
                    self.queue.push_back(to);
                }
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`FlowNetwork::residual_reachable_into`].
    pub fn residual_reachable(&mut self, s: usize) -> Vec<bool> {
        let mut seen = Vec::new();
        self.residual_reachable_into(s, &mut seen);
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow_on(a), 7);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two routes of capacity 2 and 3 sharing nothing.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 3, 2);
        net.add_arc(0, 2, 3);
        net.add_arc(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn bottleneck_in_the_middle() {
        // s → a,b → c → t with middle capacity 1.
        let mut net = FlowNetwork::new(5);
        net.add_arc(0, 1, 10);
        net.add_arc(0, 2, 10);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        net.add_arc(3, 4, 1);
        assert_eq!(net.max_flow(0, 4), 1);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 4);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn residual_reachability_identifies_min_cut() {
        // s -5- a -1- b -5- t : cut is the middle arc.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 5);
        net.add_arc(1, 2, 1);
        net.add_arc(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 1);
        let reach = net.residual_reachable(0);
        assert_eq!(reach, vec![true, true, false, false]);
    }

    #[test]
    fn cut_value_equals_flow_on_bipartite_like_network() {
        // Mirrors the structure used by the vertex-cover reduction.
        let mut net = FlowNetwork::new(6); // s=0, u1=1, u2=2, v1=3, v2=4, t=5
        net.add_arc(0, 1, 3);
        net.add_arc(0, 2, 4);
        net.add_arc(1, 3, INF);
        net.add_arc(1, 4, INF);
        net.add_arc(2, 4, INF);
        net.add_arc(3, 5, 2);
        net.add_arc(4, 5, 2);
        let f = net.max_flow(0, 5);
        // Optimal cover: v1 (2) + v2 (2) = 4 vs u1+u2 = 7 vs mixes.
        assert_eq!(f, 4);
        let reach = net.residual_reachable(0);
        // Cut arcs: those from reachable to unreachable; both v→t arcs.
        assert!(reach[1] && reach[2]);
        assert!(reach[3] && reach[4]);
        assert!(!reach[5]);
    }

    #[test]
    fn flow_stats_count_phases_and_paths() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 3, 2);
        net.add_arc(0, 2, 3);
        net.add_arc(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
        let stats = net.last_flow_stats();
        // Both disjoint routes saturate inside the first level graph; a
        // final BFS discovers the sink is no longer reachable.
        assert_eq!(stats.augmenting_paths, 2);
        assert_eq!(stats.bfs_phases, 1);
        // Stats are per-run: a saturated re-run resets them.
        assert_eq!(net.max_flow(0, 3), 0);
        assert_eq!(
            net.last_flow_stats(),
            FlowStats {
                bfs_phases: 0,
                augmenting_paths: 0
            }
        );
    }

    #[test]
    fn reset_reuses_buffers_and_solves_correctly() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 3, 2);
        assert_eq!(net.max_flow(0, 3), 2);
        // Shrink: new, unrelated network on 3 vertices.
        net.reset(3);
        assert_eq!(net.vertex_count(), 3);
        net.add_arc(0, 1, 9);
        net.add_arc(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
        // Grow again.
        net.reset(6);
        net.add_arc(0, 5, 11);
        assert_eq!(net.max_flow(0, 5), 11);
        assert_eq!(
            net.max_flow(0, 5),
            0,
            "capacities stay consumed until reset"
        );
    }
}
