//! Dinic maximum flow on integer capacities.
//!
//! The single-edge optimization of §2.2 reduces minimum-weight bipartite
//! vertex cover to a minimum s–t cut, which we obtain from a max flow. The
//! paper cites standard network-flow techniques [Ahuja–Magnanti–Orlin];
//! Dinic's algorithm is the usual choice and runs in `O(E·√V)` on the unit
//! networks that arise here.

use std::collections::VecDeque;

/// Capacity value treated as unbounded. Large enough that no sum of real
/// capacities can reach it, small enough that additions cannot overflow.
pub const INF: u64 = u64::MAX / 4;

#[derive(Clone, Debug)]
struct Arc {
    to: usize,
    cap: u64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// A flow network under construction / after a max-flow run.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    arcs: Vec<Arc>,
    head: Vec<Vec<usize>>, // per-vertex arc indices
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            arcs: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `from → to` with the given capacity and returns
    /// its handle (usable with [`FlowNetwork::flow_on`]).
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u64) -> usize {
        assert!(from < self.head.len() && to < self.head.len(), "arc endpoint out of range");
        let a = self.arcs.len();
        let b = a + 1;
        self.arcs.push(Arc { to, cap, rev: b });
        self.arcs.push(Arc { to: from, cap: 0, rev: a });
        self.head[from].push(a);
        self.head[to].push(b);
        a
    }

    /// Flow currently routed through the arc returned by `add_arc`.
    pub fn flow_on(&self, arc: usize) -> u64 {
        // Flow pushed equals the residual capacity accumulated on the
        // reverse arc.
        self.arcs[self.arcs[arc].rev].cap
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.head.len()];
        let mut q = VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.head[u] {
                let arc = &self.arcs[ai];
                if arc.cap > 0 && level[arc.to] < 0 {
                    level[arc.to] = level[u] + 1;
                    q.push_back(arc.to);
                }
            }
        }
        (level[t] >= 0).then_some(level)
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: u64,
        level: &[i32],
        iter: &mut [usize],
    ) -> u64 {
        if u == t {
            return pushed;
        }
        while iter[u] < self.head[u].len() {
            let ai = self.head[u][iter[u]];
            let (to, cap) = {
                let arc = &self.arcs[ai];
                (arc.to, arc.cap)
            };
            if cap > 0 && level[to] == level[u] + 1 {
                let d = self.dfs_push(to, t, pushed.min(cap), level, iter);
                if d > 0 {
                    self.arcs[ai].cap -= d;
                    let rev = self.arcs[ai].rev;
                    self.arcs[rev].cap += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Computes the maximum s→t flow, mutating residual capacities.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut total = 0u64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.head.len()];
            loop {
                let pushed = self.dfs_push(s, t, INF, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// Vertices reachable from `s` in the residual graph. After
    /// [`FlowNetwork::max_flow`], this is the source side of the *canonical*
    /// (source-minimal) minimum cut — a deterministic choice among all
    /// minimum cuts, which is what makes the extracted vertex covers
    /// reproducible.
    pub fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.head.len()];
        let mut q = VecDeque::new();
        seen[s] = true;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.head[u] {
                let arc = &self.arcs[ai];
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    q.push_back(arc.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow_on(a), 7);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two routes of capacity 2 and 3 sharing nothing.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 3, 2);
        net.add_arc(0, 2, 3);
        net.add_arc(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn bottleneck_in_the_middle() {
        // s → a,b → c → t with middle capacity 1.
        let mut net = FlowNetwork::new(5);
        net.add_arc(0, 1, 10);
        net.add_arc(0, 2, 10);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        net.add_arc(3, 4, 1);
        assert_eq!(net.max_flow(0, 4), 1);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 4);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn residual_reachability_identifies_min_cut() {
        // s -5- a -1- b -5- t : cut is the middle arc.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 5);
        net.add_arc(1, 2, 1);
        net.add_arc(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 1);
        let reach = net.residual_reachable(0);
        assert_eq!(reach, vec![true, true, false, false]);
    }

    #[test]
    fn cut_value_equals_flow_on_bipartite_like_network() {
        // Mirrors the structure used by the vertex-cover reduction.
        let mut net = FlowNetwork::new(6); // s=0, u1=1, u2=2, v1=3, v2=4, t=5
        net.add_arc(0, 1, 3);
        net.add_arc(0, 2, 4);
        net.add_arc(1, 3, INF);
        net.add_arc(1, 4, INF);
        net.add_arc(2, 4, INF);
        net.add_arc(3, 5, 2);
        net.add_arc(4, 5, 2);
        let f = net.max_flow(0, 5);
        // Optimal cover: v1 (2) + v2 (2) = 4 vs u1+u2 = 7 vs mixes.
        assert_eq!(f, 4);
        let reach = net.residual_reachable(0);
        // Cut arcs: those from reachable to unreachable; both v→t arcs.
        assert!(reach[1] && reach[2]);
        assert!(reach[3] && reach[4]);
        assert!(!reach[5]);
    }
}
