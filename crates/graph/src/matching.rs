//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used to cross-check the vertex-cover solver: by König's theorem, on an
//! *unweighted* bipartite graph the size of a maximum matching equals the
//! size of a minimum vertex cover. The property tests in this crate pit the
//! two implementations against each other on random graphs.

use std::collections::VecDeque;

/// A maximum matching on a bipartite graph with `nl` left and `nr` right
/// vertices.
#[derive(Clone, Debug)]
pub struct Matching {
    /// `pair_left[u]` = matched right vertex of `u`, if any.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[v]` = matched left vertex of `v`, if any.
    pub pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }
}

/// Computes a maximum matching with Hopcroft–Karp in `O(E·√V)`.
///
/// `adj[u]` lists the right neighbors of left vertex `u`.
pub fn hopcroft_karp(nl: usize, nr: usize, adj: &[Vec<usize>]) -> Matching {
    assert_eq!(adj.len(), nl, "adjacency must cover every left vertex");
    const NIL: usize = usize::MAX;
    let mut pair_u = vec![NIL; nl];
    let mut pair_v = vec![NIL; nr];
    let mut dist = vec![u32::MAX; nl];

    // BFS phase: layers of alternating paths starting from free left
    // vertices. Returns true if an augmenting path exists.
    let bfs = |pair_u: &[usize], pair_v: &[usize], dist: &mut [u32]| -> bool {
        let mut q = VecDeque::new();
        let mut found = false;
        for u in 0..nl {
            if pair_u[u] == NIL {
                dist[u] = 0;
                q.push_back(u);
            } else {
                dist[u] = u32::MAX;
            }
        }
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                match pair_v[v] {
                    NIL => found = true,
                    w => {
                        if dist[w] == u32::MAX {
                            dist[w] = dist[u] + 1;
                            q.push_back(w);
                        }
                    }
                }
            }
        }
        found
    };

    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        pair_u: &mut [usize],
        pair_v: &mut [usize],
        dist: &mut [u32],
    ) -> bool {
        const NIL: usize = usize::MAX;
        for i in 0..adj[u].len() {
            let v = adj[u][i];
            let w = pair_v[v];
            if w == NIL || (dist[w] == dist[u] + 1 && dfs(w, adj, pair_u, pair_v, dist)) {
                pair_u[u] = v;
                pair_v[v] = u;
                return true;
            }
        }
        dist[u] = u32::MAX;
        false
    }

    while bfs(&pair_u, &pair_v, &mut dist) {
        for u in 0..nl {
            if pair_u[u] == NIL {
                dfs(u, adj, &mut pair_u, &mut pair_v, &mut dist);
            }
        }
    }

    Matching {
        pair_left: pair_u
            .into_iter()
            .map(|v| (v != NIL).then_some(v))
            .collect(),
        pair_right: pair_v
            .into_iter()
            .map(|u| (u != NIL).then_some(u))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_complete_k33() {
        let adj = vec![vec![0, 1, 2]; 3];
        let m = hopcroft_karp(3, 3, &adj);
        assert_eq!(m.size(), 3);
        // Matching must be consistent in both directions.
        for (u, &pv) in m.pair_left.iter().enumerate() {
            let v = pv.unwrap();
            assert_eq!(m.pair_right[v], Some(u));
        }
    }

    #[test]
    fn star_matches_one() {
        // One left vertex connected to three right vertices.
        let adj = vec![vec![0, 1, 2]];
        assert_eq!(hopcroft_karp(1, 3, &adj).size(), 1);
    }

    #[test]
    fn augmenting_path_is_found() {
        // u0-{v0}, u1-{v0,v1}: greedy could match u1→v0 and strand u0;
        // Hopcroft–Karp must find the size-2 matching.
        let adj = vec![vec![0], vec![0, 1]];
        assert_eq!(hopcroft_karp(2, 2, &adj).size(), 2);
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(2, 2, &[vec![], vec![]]);
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn koenig_on_figure2() {
        // Figure 2 instance, unweighted: max matching = min cover = 3.
        let adj = vec![vec![0, 1, 2], vec![0, 1], vec![0, 1], vec![0]];
        assert_eq!(hopcroft_karp(4, 3, &adj).size(), 3);
    }
}
