//! Bipartite graphs with weighted vertices.
//!
//! §2.2 reduces the single-edge optimization to weighted bipartite vertex
//! cover: the left side `U` holds source vertices (weight = raw value
//! size), the right side `V` holds destination vertices (weight = partial
//! aggregate record size), and an edge `(u, v)` records `u ~_e v`.

/// A vertex-weighted bipartite graph `(U, V, E)`.
///
/// Sides are indexed densely: `u ∈ 0..left_count`, `v ∈ 0..right_count`.
/// Callers keep their own mapping from these indices back to domain
/// entities (e.g. sensor-network node ids).
#[derive(Clone, Debug, Default)]
pub struct BipartiteGraph {
    left_weights: Vec<u64>,
    right_weights: Vec<u64>,
    /// Edges as `(u, v)` pairs, deduplicated lazily by construction order.
    edges: Vec<(usize, usize)>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a left (source-side) vertex with the given weight; returns its
    /// index in `U`.
    pub fn add_left(&mut self, weight: u64) -> usize {
        self.left_weights.push(weight);
        self.left_weights.len() - 1
    }

    /// Adds a right (destination-side) vertex with the given weight;
    /// returns its index in `V`.
    pub fn add_right(&mut self, weight: u64) -> usize {
        self.right_weights.push(weight);
        self.right_weights.len() - 1
    }

    /// Adds the edge `(u, v)`. Duplicate edges are ignored.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.left_weights.len(), "left vertex {u} out of range");
        assert!(
            v < self.right_weights.len(),
            "right vertex {v} out of range"
        );
        if !self.edges.contains(&(u, v)) {
            self.edges.push((u, v));
        }
    }

    /// Adds the edge `(u, v)` without scanning for duplicates — for
    /// callers whose pairs are already deduplicated (the linear
    /// `contains` check in [`BipartiteGraph::add_edge`] is quadratic over
    /// a whole edge list). A duplicate inserted here would not change any
    /// cover's validity or weight, but would inflate `edges().len()`.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added.
    pub fn add_edge_unchecked(&mut self, u: usize, v: usize) {
        assert!(u < self.left_weights.len(), "left vertex {u} out of range");
        assert!(
            v < self.right_weights.len(),
            "right vertex {v} out of range"
        );
        self.edges.push((u, v));
    }

    /// Removes all vertices and edges, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.left_weights.clear();
        self.right_weights.clear();
        self.edges.clear();
    }

    /// Number of left vertices `|U|`.
    #[inline]
    pub fn left_count(&self) -> usize {
        self.left_weights.len()
    }

    /// Number of right vertices `|V|`.
    #[inline]
    pub fn right_count(&self) -> usize {
        self.right_weights.len()
    }

    /// Weight of left vertex `u`.
    #[inline]
    pub fn left_weight(&self, u: usize) -> u64 {
        self.left_weights[u]
    }

    /// Weight of right vertex `v`.
    #[inline]
    pub fn right_weight(&self, v: usize) -> u64 {
        self.right_weights[v]
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Right neighbors of left vertex `u`.
    pub fn right_neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .iter()
            .filter(move |&&(a, _)| a == u)
            .map(|&(_, v)| v)
    }

    /// Left neighbors of right vertex `v`.
    pub fn left_neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .iter()
            .filter(move |&&(_, b)| b == v)
            .map(|&(u, _)| u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let mut g = BipartiteGraph::new();
        let a = g.add_left(3);
        let b = g.add_left(5);
        let x = g.add_right(2);
        g.add_edge(a, x);
        g.add_edge(b, x);
        g.add_edge(a, x); // duplicate ignored
        assert_eq!(g.left_count(), 2);
        assert_eq!(g.right_count(), 1);
        assert_eq!(g.edges().len(), 2);
        assert_eq!(g.left_weight(b), 5);
        assert_eq!(g.right_weight(x), 2);
        assert_eq!(g.left_neighbors(x).collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(g.right_neighbors(a).collect::<Vec<_>>(), vec![x]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_with_missing_vertex_panics() {
        let mut g = BipartiteGraph::new();
        g.add_left(1);
        g.add_edge(0, 0);
    }
}
