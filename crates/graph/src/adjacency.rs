//! Undirected adjacency-list graphs.

use crate::node::NodeId;

/// An undirected graph over dense node ids `0..n`.
///
/// Neighbor lists are kept sorted by id so iteration order (and therefore
/// every tie-break downstream) is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from_index)
    }

    /// Adds the undirected edge `{a, b}`. Duplicate and self edges are
    /// ignored, so the graph stays simple.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(a.index() < self.adj.len(), "node {a} out of range");
        assert!(b.index() < self.adj.len(), "node {b} out of range");
        if a == b || self.has_edge(a, b) {
            return;
        }
        let insert_sorted = |list: &mut Vec<NodeId>, v: NodeId| {
            let pos = list.partition_point(|&x| x < v);
            list.insert(pos, v);
        };
        insert_sorted(&mut self.adj[a.index()], b);
        insert_sorted(&mut self.adj[b.index()], a);
        self.edge_count += 1;
    }

    /// Returns true if the undirected edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Iterator over undirected edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Returns true if every node is reachable from node 0 (vacuously true
    /// for the empty graph).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let order = crate::bfs::bfs_order(self, NodeId(0));
        order.len() == n
    }
}

/// Read-only neighbor access, implemented by both [`Graph`] and
/// [`CsrAdjacency`]. Traversals ([`crate::scratch::RoutingScratch`]) are
/// generic over this so hot loops can run on the flattened layout while
/// tests and one-shot callers keep passing a [`Graph`] directly.
pub trait Adjacency {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Sorted neighbor list of `v`.
    fn neighbors(&self, v: NodeId) -> &[NodeId];
}

impl Adjacency for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }
    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::neighbors(self, v)
    }
}

/// A compressed-sparse-row snapshot of a [`Graph`]: all neighbor lists
/// packed into one contiguous slab with per-node offsets.
///
/// `Graph` keeps one `Vec` per node, which is the right shape for
/// incremental construction but costs a pointer chase into a scattered
/// heap allocation per visited node. Routing runs thousands of
/// traversals over a graph that never changes between them, so the
/// forest builders snapshot it once (O(V+E)) and traverse the slab.
/// Neighbor order is preserved exactly, so every traversal — and every
/// downstream tie-break — is bit-identical to running on the `Graph`.
#[derive(Clone, Debug)]
pub struct CsrAdjacency {
    start: Vec<u32>,
    neighbors: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Flattens `graph` into CSR form.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut start = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        start.push(0);
        for v in graph.nodes() {
            neighbors.extend_from_slice(graph.neighbors(v));
            start.push(neighbors.len() as u32);
        }
        CsrAdjacency { start, neighbors }
    }

    /// Resident bytes of the slabs.
    pub fn slab_bytes(&self) -> usize {
        self.start.len() * std::mem::size_of::<u32>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
    }
}

impl Adjacency for CsrAdjacency {
    #[inline]
    fn node_count(&self) -> usize {
        self.start.len() - 1
    }
    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.start[v.index()] as usize;
        let hi = self.start[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i));
        }
        g
    }

    #[test]
    fn add_edge_is_symmetric_and_sorted() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(2), NodeId(0));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(2), NodeId(1));
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        g.add_edge(NodeId(1), NodeId(1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = path_graph(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ]
        );
    }

    #[test]
    fn connectivity() {
        assert!(path_graph(5).is_connected());
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        assert!(!g.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn csr_mirrors_graph_exactly() {
        let mut g = Graph::new(5);
        for (a, b) in [(0, 1), (1, 2), (0, 3), (3, 4), (1, 4)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(Adjacency::node_count(&csr), g.node_count());
        for v in g.nodes() {
            assert_eq!(Adjacency::neighbors(&csr, v), g.neighbors(v), "node {v}");
        }
        // Isolated trailing node keeps an empty window.
        let lonely = CsrAdjacency::from_graph(&Graph::new(3));
        assert_eq!(Adjacency::node_count(&lonely), 3);
        assert!(Adjacency::neighbors(&lonely, NodeId(2)).is_empty());
    }
}
