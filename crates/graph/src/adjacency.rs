//! Undirected adjacency-list graphs.

use crate::node::NodeId;

/// An undirected graph over dense node ids `0..n`.
///
/// Neighbor lists are kept sorted by id so iteration order (and therefore
/// every tie-break downstream) is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from_index)
    }

    /// Adds the undirected edge `{a, b}`. Duplicate and self edges are
    /// ignored, so the graph stays simple.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(a.index() < self.adj.len(), "node {a} out of range");
        assert!(b.index() < self.adj.len(), "node {b} out of range");
        if a == b || self.has_edge(a, b) {
            return;
        }
        let insert_sorted = |list: &mut Vec<NodeId>, v: NodeId| {
            let pos = list.partition_point(|&x| x < v);
            list.insert(pos, v);
        };
        insert_sorted(&mut self.adj[a.index()], b);
        insert_sorted(&mut self.adj[b.index()], a);
        self.edge_count += 1;
    }

    /// Returns true if the undirected edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Iterator over undirected edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Returns true if every node is reachable from node 0 (vacuously true
    /// for the empty graph).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let order = crate::bfs::bfs_order(self, NodeId(0));
        order.len() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i));
        }
        g
    }

    #[test]
    fn add_edge_is_symmetric_and_sorted() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(2), NodeId(0));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(2), NodeId(1));
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        g.add_edge(NodeId(1), NodeId(1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = path_graph(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ]
        );
    }

    #[test]
    fn connectivity() {
        assert!(path_graph(5).is_connected());
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        assert!(!g.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(5));
    }
}
