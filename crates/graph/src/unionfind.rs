//! Disjoint-set union (union-find) with path halving and union by size.
//!
//! Used by the deployment generators to check radio-graph connectivity and
//! by the milestone planner to group virtual-edge segments.

/// A disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Finds the representative of `x` (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns true if they were disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Returns true if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already joined
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.component_size(3), 1);
    }

    #[test]
    fn chain_union_fully_connects() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
    }
}
