//! Push–relabel maximum flow (highest-label rule).
//!
//! A second, independently implemented max-flow algorithm. Its only job
//! is *differential testing*: the vertex-cover kernel rests on
//! [`crate::maxflow`] (Dinic), and the property tests in
//! `tests/prop_flow_equivalence.rs` check both algorithms agree on random
//! networks — the same defense-in-depth the cover solver gets from
//! Hopcroft–Karp via König's theorem.

use std::collections::BTreeMap;

/// A directed arc with capacity, for [`push_relabel_max_flow`].
#[derive(Clone, Copy, Debug)]
pub struct CapArc {
    /// Tail vertex.
    pub from: usize,
    /// Head vertex.
    pub to: usize,
    /// Capacity.
    pub cap: u64,
}

/// Computes the s→t max-flow value with the push–relabel method.
///
/// # Panics
/// Panics if `s == t` or an arc endpoint is out of range.
pub fn push_relabel_max_flow(n: usize, arcs: &[CapArc], s: usize, t: usize) -> u64 {
    assert_ne!(s, t, "source and sink must differ");
    // Residual graph: adjacency of (to, rev index) with capacities.
    struct Edge {
        to: usize,
        cap: u64,
        rev: usize,
    }
    let mut adj: Vec<Vec<Edge>> = (0..n).map(|_| Vec::new()).collect();
    // Merge parallel arcs so residual bookkeeping stays simple.
    let mut merged: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for a in arcs {
        assert!(a.from < n && a.to < n, "arc endpoint out of range");
        if a.from != a.to {
            *merged.entry((a.from, a.to)).or_insert(0) += a.cap;
        }
    }
    for (&(u, v), &cap) in &merged {
        let ru = adj[u].len();
        let rv = adj[v].len();
        adj[u].push(Edge {
            to: v,
            cap,
            rev: rv,
        });
        adj[v].push(Edge {
            to: u,
            cap: 0,
            rev: ru,
        });
    }

    let mut height = vec![0usize; n];
    let mut excess = vec![0u64; n];
    height[s] = n;

    // Saturate source arcs.
    for i in 0..adj[s].len() {
        let (to, cap) = (adj[s][i].to, adj[s][i].cap);
        if cap > 0 {
            adj[s][i].cap = 0;
            let rev = adj[s][i].rev;
            adj[to][rev].cap += cap;
            excess[to] += cap;
        }
    }

    // FIFO active list (simple and adequate at our sizes).
    let mut active: Vec<usize> = (0..n)
        .filter(|&v| v != s && v != t && excess[v] > 0)
        .collect();
    while let Some(&u) = active.first() {
        let mut pushed_any = false;
        for i in 0..adj[u].len() {
            if excess[u] == 0 {
                break;
            }
            let (to, cap) = (adj[u][i].to, adj[u][i].cap);
            if cap > 0 && height[u] == height[to] + 1 {
                let delta = excess[u].min(cap);
                adj[u][i].cap -= delta;
                let rev = adj[u][i].rev;
                adj[to][rev].cap += delta;
                excess[u] -= delta;
                excess[to] += delta;
                pushed_any = true;
                if to != s && to != t && !active.contains(&to) {
                    active.push(to);
                }
            }
        }
        if excess[u] == 0 {
            active.retain(|&v| v != u);
        } else if !pushed_any {
            // Relabel: one above the lowest admissible neighbor.
            let min_h = adj[u]
                .iter()
                .filter(|e| e.cap > 0)
                .map(|e| height[e.to])
                .min()
                .expect("active vertex has residual arcs");
            height[u] = min_h + 1;
        }
    }
    excess[t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arcs(list: &[(usize, usize, u64)]) -> Vec<CapArc> {
        list.iter()
            .map(|&(from, to, cap)| CapArc { from, to, cap })
            .collect()
    }

    #[test]
    fn single_arc() {
        assert_eq!(push_relabel_max_flow(2, &arcs(&[(0, 1, 7)]), 0, 1), 7);
    }

    #[test]
    fn diamond() {
        let a = arcs(&[(0, 1, 2), (1, 3, 2), (0, 2, 3), (2, 3, 3)]);
        assert_eq!(push_relabel_max_flow(4, &a, 0, 3), 5);
    }

    #[test]
    fn bottleneck() {
        let a = arcs(&[(0, 1, 10), (0, 2, 10), (1, 3, 1), (2, 3, 1), (3, 4, 1)]);
        assert_eq!(push_relabel_max_flow(5, &a, 0, 4), 1);
    }

    #[test]
    fn disconnected_sink() {
        assert_eq!(push_relabel_max_flow(3, &arcs(&[(0, 1, 4)]), 0, 2), 0);
    }

    #[test]
    fn parallel_arcs_add_up() {
        let a = arcs(&[(0, 1, 3), (0, 1, 4)]);
        assert_eq!(push_relabel_max_flow(2, &a, 0, 1), 7);
    }

    #[test]
    fn back_and_forth_network() {
        // Flow must route around a tempting dead end.
        let a = arcs(&[(0, 1, 5), (1, 2, 3), (1, 3, 5), (3, 2, 2), (2, 4, 5)]);
        assert_eq!(push_relabel_max_flow(5, &a, 0, 4), 5);
    }
}
