//! Graph substrate for the many-to-many aggregation system.
//!
//! This crate implements, from scratch, every graph algorithm the paper's
//! optimizer depends on:
//!
//! * adjacency-list graphs with compact [`NodeId`] handles ([`Graph`]),
//! * breadth-first shortest hop distances ([`bfs`]),
//! * Dijkstra shortest paths for weighted links ([`dijkstra`]),
//! * canonical shortest-path trees with deterministic tie-breaking
//!   ([`spt`]) — the "standard algorithm" the paper uses to build
//!   single-source multicast trees,
//! * Dinic maximum flow ([`maxflow`]), differentially tested against an
//!   independent push-relabel implementation ([`push_relabel`]),
//! * Hopcroft–Karp maximum bipartite matching ([`matching`]) — used to
//!   cross-check the cover solver through König's theorem,
//! * **minimum-weight bipartite vertex cover** ([`vertex_cover`]) — the
//!   kernel of the paper's single-edge optimization (§2.2),
//! * union-find connectivity ([`unionfind`]) and directed cycle detection /
//!   topological ordering ([`cycle`]) — used by the message merger (§3),
//! * bridge detection ([`bridges`]) — links with no runtime detour, used
//!   by the failure analysis around milestone routing (§3).
//!
//! The crate has no dependencies and is usable independently of the sensor
//! network simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod bfs;
pub mod bipartite;
pub mod bridges;
pub mod cycle;
pub mod dijkstra;
pub mod matching;
pub mod maxflow;
pub mod node;
pub mod push_relabel;
pub mod scratch;
pub mod spt;
pub mod steiner;
pub mod tiebreak;
pub mod unionfind;
pub mod vertex_cover;

pub use adjacency::Graph;
pub use bipartite::BipartiteGraph;
pub use node::NodeId;
pub use scratch::RoutingScratch;
pub use spt::ShortestPathTree;
pub use vertex_cover::{min_weight_vertex_cover, CoverSolution};
