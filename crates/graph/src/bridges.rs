//! Bridge (cut-edge) detection.
//!
//! A bridge is an edge whose removal disconnects the graph. For the
//! failure analysis of §3 these are the links with *no* runtime detour:
//! milestone routing cannot route around them, so a deployment review
//! should flag them (and the resilience simulator treats them as the
//! dominant risk). Classic Tarjan low-link algorithm, implemented
//! iteratively so deep topologies cannot overflow the stack.

use crate::adjacency::Graph;
use crate::node::NodeId;

/// Returns all bridges as `(a, b)` pairs with `a < b`, sorted.
pub fn bridges(graph: &Graph) -> Vec<(NodeId, NodeId)> {
    let n = graph.node_count();
    let mut disc = vec![0u32; n]; // discovery time, 0 = unvisited
    let mut low = vec![0u32; n];
    let mut timer = 1u32;
    let mut result = Vec::new();

    // Iterative DFS: (node, parent, neighbor cursor).
    let mut stack: Vec<(usize, Option<usize>, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != 0 {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root, None, 0));
        while let Some(&mut (v, parent, ref mut cursor)) = stack.last_mut() {
            let neighbors = graph.neighbors(NodeId::from_index(v));
            if *cursor < neighbors.len() {
                let u = neighbors[*cursor].index();
                *cursor += 1;
                if disc[u] == 0 {
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    stack.push((u, Some(v), 0));
                } else if Some(u) != parent {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(p) = parent {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        let (a, b) = if p < v { (p, v) } else { (v, p) };
                        result.push((NodeId::from_index(a), NodeId::from_index(b)));
                    }
                }
            }
        }
    }
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_edge_of_a_path_is_a_bridge() {
        let mut g = Graph::new(4);
        for i in 1..4 {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        assert_eq!(
            bridges(&g),
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ]
        );
    }

    #[test]
    fn cycles_have_no_bridges() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 5));
        }
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn lollipop_has_one_bridge() {
        // Triangle 0-1-2 plus pendant edge 2-3.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        assert_eq!(bridges(&g), vec![(NodeId(2), NodeId(3))]);
    }

    #[test]
    fn bridge_between_two_cycles() {
        // Two triangles joined by edge 2-3.
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        assert_eq!(bridges(&g), vec![(NodeId(2), NodeId(3))]);
    }

    #[test]
    fn disconnected_components_handled() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        assert_eq!(
            bridges(&g),
            vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]
        );
    }

    #[test]
    fn removal_of_a_bridge_disconnects() {
        // Differential check on a random-ish fixed graph: removing each
        // reported bridge disconnects; removing each non-bridge does not.
        let mut g = Graph::new(8);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
            (6, 7),
        ] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let bs = bridges(&g);
        for (a, b) in g.edges() {
            let mut without = Graph::new(8);
            for (x, y) in g.edges() {
                if (x, y) != (a, b) {
                    without.add_edge(x, y);
                }
            }
            let disconnects = !without.is_connected();
            assert_eq!(
                bs.contains(&(a, b)),
                disconnects,
                "edge ({a},{b}) misclassified"
            );
        }
    }
}
