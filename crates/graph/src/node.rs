//! Compact node identifiers.

use std::fmt;

/// A compact handle for a node in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices (`0..n`), which keeps every per-node table in
/// the workspace a flat `Vec` instead of a hash map. The id order is also
/// the deterministic tie-breaker used throughout routing and optimization,
/// so plans are reproducible across runs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 41, 65_535] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ordering_follows_raw_id() {
        assert!(NodeId(3) < NodeId(7));
        assert_eq!(NodeId(5), NodeId(5));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(12).to_string(), "n12");
        assert_eq!(format!("{:?}", NodeId(12)), "n12");
    }
}
