//! The canonical lower-id-predecessor tie-break rule.
//!
//! Every shortest-path structure in this workspace — BFS shortest-path
//! trees ([`crate::spt`]), weighted Dijkstra ([`crate::dijkstra`]), and
//! the arena-based runs in [`crate::scratch`] — must pick the *same*
//! parent for a node when several predecessors lie at equal distance:
//! the one with the lowest id. Plans, schedules, and executors are
//! bit-compared across builds, thread counts, and data layouts, so this
//! rule is load-bearing; it used to live in a comment inside `dijkstra`'s
//! relaxation match. This module is that rule as code, used by every
//! relaxation loop and unit-tested directly.
//!
//! The rule is stated per *relaxation offer*: node `v` currently holds
//! `(incumbent_dist, incumbent_parent)` and is offered distance
//! `cand_dist` via predecessor `cand_parent`. Applying the rule over any
//! sequence of offers that includes every optimal predecessor converges
//! to `(d*, min-id optimal predecessor)` regardless of offer order —
//! which is exactly why heap layout (binary vs indexed 4-ary) cannot
//! change routing results.

use crate::node::NodeId;

/// Returns `true` if the offer `(cand_dist, cand_parent)` should replace
/// the incumbent `(incumbent_dist, incumbent_parent)` state of a node.
///
/// * no incumbent distance → accept (first offer);
/// * strictly smaller distance → accept;
/// * equal distance → accept only a lower-id predecessor;
/// * larger distance → reject.
///
/// A node whose distance is set always has a parent except the root; the
/// root never receives offers at its own distance in a positive-weight /
/// unit-hop run, so `incumbent_parent == None` with an equal-distance
/// offer (rejecting it) can only describe the root and keeps it
/// parentless.
#[inline]
pub fn offer_wins(
    cand_dist: u64,
    cand_parent: NodeId,
    incumbent_dist: Option<u64>,
    incumbent_parent: Option<NodeId>,
) -> bool {
    match incumbent_dist {
        None => true,
        Some(dv) if cand_dist < dv => true,
        Some(dv) if cand_dist == dv => incumbent_parent.is_some_and(|p| cand_parent < p),
        Some(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_offer_always_wins() {
        assert!(offer_wins(17, NodeId(9), None, None));
    }

    #[test]
    fn smaller_distance_wins_regardless_of_id() {
        assert!(offer_wins(3, NodeId(99), Some(4), Some(NodeId(1))));
    }

    #[test]
    fn equal_distance_prefers_lower_id_predecessor() {
        assert!(offer_wins(4, NodeId(2), Some(4), Some(NodeId(5))));
        assert!(!offer_wins(4, NodeId(5), Some(4), Some(NodeId(2))));
        // Same predecessor id is not an improvement.
        assert!(!offer_wins(4, NodeId(5), Some(4), Some(NodeId(5))));
    }

    #[test]
    fn larger_distance_never_wins() {
        assert!(!offer_wins(5, NodeId(0), Some(4), Some(NodeId(7))));
    }

    #[test]
    fn equal_distance_against_the_root_is_rejected() {
        // The root holds dist 0 with no parent; an equal-distance offer
        // must not attach a parent to it.
        assert!(!offer_wins(0, NodeId(3), Some(0), None));
    }

    #[test]
    fn offer_order_is_immaterial() {
        // Fold the same offer multiset in two orders; the surviving
        // parent is the min-id optimal predecessor either way.
        let offers = [
            (4u64, NodeId(8)),
            (4, NodeId(2)),
            (5, NodeId(0)),
            (4, NodeId(6)),
        ];
        let fold = |seq: &[(u64, NodeId)]| {
            let mut state: (Option<u64>, Option<NodeId>) = (None, None);
            for &(d, p) in seq {
                if offer_wins(d, p, state.0, state.1) {
                    state = (Some(d), Some(p));
                }
            }
            state
        };
        let mut rev = offers;
        rev.reverse();
        assert_eq!(fold(&offers), fold(&rev));
        assert_eq!(fold(&offers), (Some(4), Some(NodeId(2))));
    }
}
