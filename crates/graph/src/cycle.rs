//! Directed-graph cycle detection and topological ordering.
//!
//! The message merger of §3 must never merge two messages if the combined
//! wait-for relation would contain a cycle (Theorem 2 guarantees the
//! *unmerged* plan is acyclic; merging can re-introduce cycles). These
//! helpers operate on ad-hoc directed graphs given as arc lists over dense
//! vertex indices.

use std::collections::VecDeque;

/// Returns a topological order of `0..n` under the arcs `from → to`, or
/// `None` if the directed graph contains a cycle. (Kahn's algorithm;
/// deterministic: ready vertices are consumed in ascending index order.)
pub fn topological_order(n: usize, arcs: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut indegree = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in arcs {
        assert!(a < n && b < n, "arc endpoint out of range");
        out[a].push(b);
        indegree[b] += 1;
    }
    // A BinaryHeap would give ascending order too, but with the small
    // vertex counts here a sorted initial frontier + queue is enough for
    // determinism.
    let mut ready: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    ready.sort_unstable();
    let mut queue: VecDeque<usize> = ready.into();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in &out[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push_back(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Returns true if the directed graph contains a cycle.
pub fn has_cycle(n: usize, arcs: &[(usize, usize)]) -> bool {
    topological_order(n, arcs).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_orders_respect_arcs() {
        let arcs = [(0, 2), (1, 2), (2, 3)];
        let order = topological_order(4, &arcs).unwrap();
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        for &(a, b) in &arcs {
            assert!(pos(a) < pos(b));
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        assert!(has_cycle(1, &[(0, 0)]));
    }

    #[test]
    fn two_cycle_detected() {
        assert!(has_cycle(2, &[(0, 1), (1, 0)]));
    }

    #[test]
    fn long_cycle_detected() {
        assert!(has_cycle(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        assert_eq!(topological_order(3, &[]), Some(vec![0, 1, 2]));
    }

    #[test]
    fn parallel_arcs_are_fine() {
        assert!(!has_cycle(2, &[(0, 1), (0, 1)]));
    }
}
