//! Breadth-first search: hop distances and traversal orders.

use std::collections::VecDeque;

use crate::adjacency::Graph;
use crate::node::NodeId;

/// Hop distance from a BFS root to every node; `None` for unreachable nodes.
pub type HopDistances = Vec<Option<u32>>;

/// Computes hop distances from `root` to every node.
pub fn bfs_distances(graph: &Graph, root: NodeId) -> HopDistances {
    let mut dist: HopDistances = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[root.index()] = Some(0);
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued node has a distance");
        for &v in graph.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Returns the nodes reachable from `root` in BFS order (root first,
/// neighbors visited in ascending id order).
pub fn bfs_order(graph: &Graph, root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[root.index()] = true;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in graph.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Hop distances from every node to every node (dense `n × n` matrix).
///
/// Runs one BFS per node: `O(n · (n + m))`, fine for the network sizes the
/// paper evaluates (≤ a few hundred nodes).
pub fn all_pairs_hops(graph: &Graph) -> Vec<HopDistances> {
    graph.nodes().map(|v| bfs_distances(graph, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n));
        }
        g
    }

    #[test]
    fn distances_on_a_path() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn distances_on_a_cycle() {
        let g = cycle_graph(6);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(
            d,
            vec![Some(0), Some(1), Some(2), Some(3), Some(2), Some(1)]
        );
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn order_is_deterministic_by_id() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        assert_eq!(
            bfs_order(&g, NodeId(0)),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)]
        );
    }

    #[test]
    fn all_pairs_symmetry() {
        let g = cycle_graph(5);
        let m = all_pairs_hops(&g);
        for (a, row) in m.iter().enumerate() {
            for (b, &val) in row.iter().enumerate() {
                assert_eq!(val, m[b][a]);
            }
        }
    }
}
