//! Canonical shortest-path trees and multicast trees.
//!
//! The paper builds "a multicast tree from each source to all destinations
//! requiring it" using a standard single-source algorithm (§4). We use the
//! BFS shortest-path tree with a deterministic tie-break — each node's
//! parent is its *lowest-id* neighbor among those one hop closer to the
//! root — and then prune the tree to the union of root→destination paths,
//! which gives the paper's *minimality* restriction (§2.1) by construction.

use crate::adjacency::Graph;
use crate::bfs::bfs_distances;
use crate::node::NodeId;
use crate::tiebreak::offer_wins;

/// A shortest-path tree rooted at a node, covering every reachable node.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    dist: Vec<Option<u32>>,
}

impl ShortestPathTree {
    /// Builds the canonical BFS shortest-path tree rooted at `root`.
    ///
    /// ```
    /// use m2m_graph::{Graph, NodeId, ShortestPathTree};
    ///
    /// let mut g = Graph::new(4);
    /// g.add_edge(NodeId(0), NodeId(1));
    /// g.add_edge(NodeId(1), NodeId(2));
    /// g.add_edge(NodeId(2), NodeId(3));
    ///
    /// let spt = ShortestPathTree::build(&g, NodeId(0));
    /// assert_eq!(spt.distance(NodeId(3)), Some(3));
    /// let multicast = spt.prune_to(&[NodeId(3)]);
    /// assert_eq!(multicast.size(), 4);
    /// ```
    pub fn build(graph: &Graph, root: NodeId) -> Self {
        let dist = bfs_distances(graph, root);
        let mut parent: Vec<Option<NodeId>> = vec![None; graph.node_count()];
        for v in graph.nodes() {
            let Some(dv) = dist[v.index()] else { continue };
            if dv == 0 {
                continue;
            }
            // Canonical parent: the lowest-id neighbor one hop closer to
            // the root, selected by the shared tie-break rule so every
            // shortest-path structure in the workspace agrees.
            let mut best: Option<NodeId> = None;
            for &u in graph.neighbors(v) {
                if dist[u.index()] == Some(dv - 1)
                    && offer_wins(u64::from(dv), u, best.map(|_| u64::from(dv)), best)
                {
                    best = Some(u);
                }
            }
            parent[v.index()] = best;
            debug_assert!(
                parent[v.index()].is_some(),
                "non-root reachable node must have a parent"
            );
        }
        ShortestPathTree { root, parent, dist }
    }

    /// The tree root.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Hop distance from the root to `v`, or `None` if unreachable.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        self.dist[v.index()]
    }

    /// Parent of `v` in the tree (`None` for the root and unreachable nodes).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The root→`v` path (inclusive), or `None` if unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.dist[v.index()]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.root);
        Some(path)
    }

    /// Prunes the tree to the union of root→target paths, producing a
    /// minimal multicast tree. Unreachable targets are skipped.
    pub fn prune_to(&self, targets: &[NodeId]) -> MulticastTree {
        let n = self.parent.len();
        let mut keep = vec![false; n];
        let mut reached = Vec::new();
        for &t in targets {
            if self.dist[t.index()].is_none() {
                continue;
            }
            reached.push(t);
            let mut cur = t;
            while !keep[cur.index()] {
                keep[cur.index()] = true;
                match self.parent[cur.index()] {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        keep[self.root.index()] |= !reached.is_empty();
        let mut parent = vec![None; n];
        let mut nodes = Vec::new();
        for i in 0..n {
            if keep[i] {
                nodes.push(NodeId::from_index(i));
                parent[i] = self.parent[i];
            }
        }
        let mut destinations = reached;
        destinations.sort_unstable();
        destinations.dedup();
        MulticastTree {
            root: self.root,
            parent,
            nodes,
            destinations,
        }
    }
}

/// A directed multicast tree: edges point from the root (source) toward the
/// destinations it spans (§2.1).
///
/// Satisfies the paper's *minimality* restriction: every leaf is a
/// destination, so removing any edge disconnects some destination.
#[derive(Clone, Debug)]
pub struct MulticastTree {
    root: NodeId,
    /// Parent of each kept node (indexed by node id); `None` elsewhere.
    parent: Vec<Option<NodeId>>,
    /// Kept nodes in ascending id order.
    nodes: Vec<NodeId>,
    /// The destinations this tree spans, sorted.
    destinations: Vec<NodeId>,
}

impl MulticastTree {
    /// Builds a multicast tree directly from parent pointers.
    ///
    /// `parent[v]` must be `Some` exactly for the non-root members of the
    /// tree, and following parents from any member must reach `root`.
    /// Used by routing modes that derive trees from structures other than
    /// a per-source SPT (e.g. a shared global spanning tree).
    ///
    /// # Panics
    /// Panics if a parent chain does not terminate at `root` or if a
    /// destination is not a member.
    pub fn from_parents(
        root: NodeId,
        parent: Vec<Option<NodeId>>,
        mut destinations: Vec<NodeId>,
    ) -> Self {
        let mut nodes: Vec<NodeId> = parent
            .iter()
            .enumerate()
            .filter(|&(_i, p)| p.is_some())
            .map(|(i, _p)| NodeId::from_index(i))
            .collect();
        nodes.push(root);
        nodes.sort_unstable();
        nodes.dedup();
        destinations.sort_unstable();
        destinations.dedup();
        let tree = MulticastTree {
            root,
            parent,
            nodes,
            destinations,
        };
        for &d in &tree.destinations {
            assert!(
                tree.path_to(d).is_some(),
                "destination {d} is not connected to root {root} in the supplied parents"
            );
        }
        tree
    }

    /// The source at the root of the tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Nodes in the tree, ascending id order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Destinations spanned by the tree, sorted.
    #[inline]
    pub fn destinations(&self) -> &[NodeId] {
        &self.destinations
    }

    /// Number of nodes in the tree (the paper's `|T_s|`, Theorem 3).
    #[inline]
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if `v` is in the tree.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Parent of `v` within the tree (`None` for the root or non-members).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent.get(v.index()).copied().flatten()
    }

    /// Directed edges `(parent → child)` of the tree.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes
            .iter()
            .filter_map(move |&v| self.parent(v).map(|p| (p, v)))
    }

    /// The root→`dest` path within the tree (inclusive), or `None` if
    /// `dest` is not a member.
    pub fn path_to(&self, dest: NodeId) -> Option<Vec<NodeId>> {
        if !self.contains(dest) {
            return None;
        }
        let mut path = vec![dest];
        let mut cur = dest;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        if *path.last().unwrap() != self.root {
            return None;
        }
        path.reverse();
        Some(path)
    }

    /// Resident bytes of this tree's backing storage (capacity-based
    /// would overstate; lengths are what scaling plots care about).
    pub fn slab_bytes(&self) -> usize {
        self.parent.len() * std::mem::size_of::<Option<NodeId>>()
            + self.nodes.len() * std::mem::size_of::<NodeId>()
            + self.destinations.len() * std::mem::size_of::<NodeId>()
    }

    /// Destinations whose root-path traverses the directed edge `tail→head`.
    ///
    /// This is the `s ~_e d` relation of §2.2 restricted to this tree.
    pub fn destinations_through(&self, tail: NodeId, head: NodeId) -> Vec<NodeId> {
        self.destinations
            .iter()
            .copied()
            .filter(|&d| {
                self.path_to(d)
                    .is_some_and(|p| p.windows(2).any(|w| w[0] == tail && w[1] == head))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×3 grid:
    /// 0-1-2
    /// | | |
    /// 3-4-5
    fn grid() -> Graph {
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    #[test]
    fn spt_parents_are_min_id() {
        let spt = ShortestPathTree::build(&grid(), NodeId(0));
        assert_eq!(spt.parent(NodeId(4)), Some(NodeId(1))); // 1 < 3
        assert_eq!(spt.parent(NodeId(5)), Some(NodeId(2))); // 2 < 4
        assert_eq!(spt.parent(NodeId(0)), None);
        assert_eq!(spt.distance(NodeId(5)), Some(3));
    }

    #[test]
    fn spt_path_reconstruction() {
        let spt = ShortestPathTree::build(&grid(), NodeId(0));
        assert_eq!(
            spt.path_to(NodeId(5)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(5)]
        );
    }

    #[test]
    fn pruned_tree_is_minimal() {
        let spt = ShortestPathTree::build(&grid(), NodeId(0));
        let mt = spt.prune_to(&[NodeId(5)]);
        assert_eq!(mt.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(5)]);
        assert_eq!(mt.size(), 4);
        // Every leaf is a destination: removing any edge loses node 5.
        let leaves: Vec<_> = mt
            .nodes()
            .iter()
            .copied()
            .filter(|&v| mt.edges().all(|(p, _)| p != v))
            .collect();
        assert_eq!(leaves, vec![NodeId(5)]);
    }

    #[test]
    fn pruned_tree_multiple_destinations_share_prefix() {
        let spt = ShortestPathTree::build(&grid(), NodeId(0));
        let mt = spt.prune_to(&[NodeId(4), NodeId(2)]);
        assert!(mt.contains(NodeId(1)));
        assert!(!mt.contains(NodeId(3)));
        assert_eq!(mt.destinations(), &[NodeId(2), NodeId(4)]);
        // Edge 0→1 carries both destinations.
        assert_eq!(
            mt.destinations_through(NodeId(0), NodeId(1)),
            vec![NodeId(2), NodeId(4)]
        );
        // Edge 1→2 carries only destination 2.
        assert_eq!(
            mt.destinations_through(NodeId(1), NodeId(2)),
            vec![NodeId(2)]
        );
    }

    #[test]
    fn unreachable_targets_skipped() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        let spt = ShortestPathTree::build(&g, NodeId(0));
        let mt = spt.prune_to(&[NodeId(2), NodeId(1)]);
        assert_eq!(mt.destinations(), &[NodeId(1)]);
        assert!(!mt.contains(NodeId(2)));
    }

    #[test]
    fn tree_edge_count_is_nodes_minus_one() {
        let spt = ShortestPathTree::build(&grid(), NodeId(3));
        let mt = spt.prune_to(&[NodeId(2), NodeId(5), NodeId(0)]);
        assert_eq!(mt.edges().count(), mt.size() - 1);
    }
}
