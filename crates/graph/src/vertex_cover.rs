//! Minimum-weight bipartite vertex cover — the paper's single-edge kernel.
//!
//! §2.2: choosing a left (source) vertex means "transmit this value raw",
//! choosing a right (destination) vertex means "transmit one partial
//! aggregate record for this destination". A vertex cover guarantees every
//! producer–consumer pair `s ~_e d` is served; the minimum-weight cover
//! minimizes the bytes crossing the edge.
//!
//! The classic reduction: build a flow network
//! `s → u (cap = w_u) → v (cap = ∞) → t (cap = w_v)`; by LP duality the
//! minimum s–t cut equals the minimum-weight vertex cover, and the cover is
//! read off the canonical (source-minimal) cut: `u` is in the cover iff it
//! is *not* reachable from `s` in the residual graph, `v` iff it *is*.

use crate::bipartite::BipartiteGraph;
use crate::maxflow::{FlowNetwork, INF};

/// A minimum-weight vertex cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverSolution {
    /// Left vertices in the cover, ascending.
    pub left: Vec<usize>,
    /// Right vertices in the cover, ascending.
    pub right: Vec<usize>,
    /// Total weight of the cover.
    pub weight: u64,
}

impl CoverSolution {
    /// Returns true if left vertex `u` is in the cover.
    pub fn contains_left(&self, u: usize) -> bool {
        self.left.binary_search(&u).is_ok()
    }

    /// Returns true if right vertex `v` is in the cover.
    pub fn contains_right(&self, v: usize) -> bool {
        self.right.binary_search(&v).is_ok()
    }

    /// Verifies that this is a valid cover of `graph` and that `weight`
    /// matches the vertex weights. Used by tests and debug assertions.
    pub fn is_valid_cover(&self, graph: &BipartiteGraph) -> bool {
        let covers_all = graph
            .edges()
            .iter()
            .all(|&(u, v)| self.contains_left(u) || self.contains_right(v));
        let weight_ok = self.weight
            == self
                .left
                .iter()
                .map(|&u| graph.left_weight(u))
                .chain(self.right.iter().map(|&v| graph.right_weight(v)))
                .sum::<u64>();
        covers_all && weight_ok
    }
}

/// Reusable workspace for [`min_weight_vertex_cover_with`].
///
/// The plan optimizer solves one cover problem per multicast edge —
/// thousands per plan build. Holding the flow network and reachability
/// buffer in a scratch that lives across calls (one per worker thread)
/// removes every per-solve heap allocation except the returned cover's
/// two index vectors.
#[derive(Clone, Debug, Default)]
pub struct CoverScratch {
    net: FlowNetwork,
    reach: Vec<bool>,
}

impl CoverScratch {
    /// Creates an empty workspace; buffers grow to fit the largest
    /// instance solved through it and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dinic work counters from the most recent solve through this
    /// scratch (see [`crate::maxflow::FlowStats`]).
    pub fn last_flow_stats(&self) -> crate::maxflow::FlowStats {
        self.net.last_flow_stats()
    }
}

/// Computes the minimum-weight vertex cover of a bipartite graph.
///
/// The result is deterministic: among all minimum covers it returns the one
/// induced by the canonical source-minimal min cut, which prefers keeping
/// *left* (raw) vertices in the cover when ties allow. Vertices of weight 0
/// are permitted (they are always safe to include).
///
/// ```
/// use m2m_graph::bipartite::BipartiteGraph;
/// use m2m_graph::vertex_cover::min_weight_vertex_cover;
///
/// // The paper's Figure 2: source a feeds k, l, m; b and c feed k, l;
/// // d feeds k. Unit weights (weighted-sum sizes).
/// let mut g = BipartiteGraph::new();
/// let (a, b, c, d) = (g.add_left(1), g.add_left(1), g.add_left(1), g.add_left(1));
/// let (k, l, m) = (g.add_right(1), g.add_right(1), g.add_right(1));
/// for u in [a, b, c, d] { g.add_edge(u, k); }
/// for u in [a, b, c] { g.add_edge(u, l); }
/// g.add_edge(a, m);
///
/// let cover = min_weight_vertex_cover(&g);
/// assert_eq!(cover.weight, 3); // raw a + records for k and l
/// assert!(cover.is_valid_cover(&g));
/// ```
pub fn min_weight_vertex_cover(graph: &BipartiteGraph) -> CoverSolution {
    min_weight_vertex_cover_with(&mut CoverScratch::new(), graph)
}

/// [`min_weight_vertex_cover`] with caller-provided scratch buffers.
///
/// Identical output for identical input regardless of what the scratch
/// was previously used for — the workspace is fully reset per call.
pub fn min_weight_vertex_cover_with(
    scratch: &mut CoverScratch,
    graph: &BipartiteGraph,
) -> CoverSolution {
    let nl = graph.left_count();
    let nr = graph.right_count();
    // Vertex layout: 0 = source, 1..=nl = U, nl+1..=nl+nr = V, last = sink.
    let s = 0;
    let t = nl + nr + 1;
    let net = &mut scratch.net;
    net.reset(nl + nr + 2);
    for u in 0..nl {
        net.add_arc(s, 1 + u, graph.left_weight(u));
    }
    for v in 0..nr {
        net.add_arc(1 + nl + v, t, graph.right_weight(v));
    }
    for &(u, v) in graph.edges() {
        net.add_arc(1 + u, 1 + nl + v, INF);
    }
    let cut = net.max_flow(s, t);
    net.residual_reachable_into(s, &mut scratch.reach);
    let reach = &scratch.reach;
    let left: Vec<usize> = (0..nl).filter(|&u| !reach[1 + u]).collect();
    let right: Vec<usize> = (0..nr).filter(|&v| reach[1 + nl + v]).collect();
    let solution = CoverSolution {
        left,
        right,
        weight: cut,
    };
    debug_assert!(
        solution.is_valid_cover(graph),
        "min-cut cover must be valid"
    );
    solution
}

/// Exhaustive minimum-weight cover for small instances (≤ ~20 vertices).
/// Exposed for differential testing of the flow-based solver.
pub fn brute_force_min_cover(graph: &BipartiteGraph) -> CoverSolution {
    let nl = graph.left_count();
    let nr = graph.right_count();
    let total = nl + nr;
    assert!(total <= 22, "brute force limited to small instances");
    let mut best: Option<CoverSolution> = None;
    for mask in 0u32..(1 << total) {
        let in_left = |u: usize| mask & (1 << u) != 0;
        let in_right = |v: usize| mask & (1 << (nl + v)) != 0;
        if !graph
            .edges()
            .iter()
            .all(|&(u, v)| in_left(u) || in_right(v))
        {
            continue;
        }
        let weight: u64 = (0..nl)
            .filter(|&u| in_left(u))
            .map(|u| graph.left_weight(u))
            .chain(
                (0..nr)
                    .filter(|&v| in_right(v))
                    .map(|v| graph.right_weight(v)),
            )
            .sum();
        if best.as_ref().is_none_or(|b| weight < b.weight) {
            best = Some(CoverSolution {
                left: (0..nl).filter(|&u| in_left(u)).collect(),
                right: (0..nr).filter(|&v| in_right(v)).collect(),
                weight,
            });
        }
    }
    best.expect("the all-vertices cover always exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 2 instance: sources {a,b,c,d}, destinations
    /// {k,l,m}; k aggregates a,b,c,d; l aggregates a,b,c; m aggregates a.
    /// All weights 1 (weighted sum: raw values and partial records are both
    /// single floats).
    fn figure2() -> BipartiteGraph {
        let mut g = BipartiteGraph::new();
        let (a, b, c, d) = (g.add_left(1), g.add_left(1), g.add_left(1), g.add_left(1));
        let (k, l, m) = (g.add_right(1), g.add_right(1), g.add_right(1));
        for u in [a, b, c, d] {
            g.add_edge(u, k);
        }
        for u in [a, b, c] {
            g.add_edge(u, l);
        }
        g.add_edge(a, m);
        g
    }

    #[test]
    fn figure2_optimum_is_three_units() {
        // The paper's solution for edge i→j: {a, k, l} — one raw value and
        // two partial aggregate records, total message size 3 (§2.2).
        let g = figure2();
        let sol = min_weight_vertex_cover(&g);
        assert_eq!(sol.weight, 3);
        assert!(sol.is_valid_cover(&g));
        assert_eq!(brute_force_min_cover(&g).weight, 3);
    }

    #[test]
    fn empty_graph_has_empty_cover() {
        let g = BipartiteGraph::new();
        let sol = min_weight_vertex_cover(&g);
        assert_eq!(sol.weight, 0);
        assert!(sol.left.is_empty() && sol.right.is_empty());
    }

    #[test]
    fn isolated_vertices_never_chosen() {
        let mut g = BipartiteGraph::new();
        g.add_left(10);
        g.add_right(10);
        let u = g.add_left(1);
        let v = g.add_right(2);
        g.add_edge(u, v);
        let sol = min_weight_vertex_cover(&g);
        assert_eq!(sol.weight, 1);
        assert_eq!(sol.left, vec![u]);
        assert!(sol.right.is_empty());
    }

    #[test]
    fn heavy_source_forces_destination_choice() {
        // One source feeding three destinations, but the source is huge
        // (e.g. a large raw record): cover the destinations instead.
        let mut g = BipartiteGraph::new();
        let u = g.add_left(100);
        for _ in 0..3 {
            let v = g.add_right(5);
            g.add_edge(u, v);
        }
        let sol = min_weight_vertex_cover(&g);
        assert_eq!(sol.weight, 15);
        assert_eq!(sol.right.len(), 3);
    }

    #[test]
    fn star_prefers_single_shared_raw() {
        // Figure 1(A): one source, three destinations, equal sizes —
        // transmit the raw value once.
        let mut g = BipartiteGraph::new();
        let u = g.add_left(1);
        for _ in 0..3 {
            let v = g.add_right(1);
            g.add_edge(u, v);
        }
        let sol = min_weight_vertex_cover(&g);
        assert_eq!(sol.weight, 1);
        assert_eq!(sol.left, vec![u]);
    }

    #[test]
    fn converging_sources_prefer_aggregation() {
        // Figure 1(B): three sources, one destination — aggregate.
        let mut g = BipartiteGraph::new();
        let v = g.add_right(1);
        for _ in 0..3 {
            let u = g.add_left(1);
            g.add_edge(u, v);
        }
        let sol = min_weight_vertex_cover(&g);
        assert_eq!(sol.weight, 1);
        assert_eq!(sol.right, vec![v]);
    }

    #[test]
    fn zero_weight_vertices_are_harmless() {
        let mut g = BipartiteGraph::new();
        let u = g.add_left(0);
        let v = g.add_right(7);
        g.add_edge(u, v);
        let sol = min_weight_vertex_cover(&g);
        assert_eq!(sol.weight, 0);
        assert!(sol.is_valid_cover(&g));
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_solves() {
        let mut scratch = CoverScratch::new();
        // Solve a sequence of differently-shaped instances through one
        // scratch; every answer must match a fresh-workspace solve.
        let mut instances: Vec<BipartiteGraph> = Vec::new();
        instances.push(figure2());
        let mut small = BipartiteGraph::new();
        let u = small.add_left(100);
        for _ in 0..3 {
            let v = small.add_right(5);
            small.add_edge(u, v);
        }
        instances.push(small);
        instances.push(BipartiteGraph::new());
        instances.push(figure2());
        for g in &instances {
            let reused = min_weight_vertex_cover_with(&mut scratch, g);
            let fresh = min_weight_vertex_cover(g);
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn matches_brute_force_on_fixed_instances() {
        // A couple of irregular instances with asymmetric weights.
        let mut g = BipartiteGraph::new();
        let us: Vec<_> = [3u64, 1, 4, 1, 5].iter().map(|&w| g.add_left(w)).collect();
        let vs: Vec<_> = [9u64, 2, 6].iter().map(|&w| g.add_right(w)).collect();
        for (i, &u) in us.iter().enumerate() {
            for (j, &v) in vs.iter().enumerate() {
                if (i + j) % 2 == 0 {
                    g.add_edge(u, v);
                }
            }
        }
        let fast = min_weight_vertex_cover(&g);
        let slow = brute_force_min_cover(&g);
        assert_eq!(fast.weight, slow.weight);
        assert!(fast.is_valid_cover(&g));
    }
}
