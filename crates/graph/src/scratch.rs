//! Reusable per-source routing arena.
//!
//! Building routing tables runs one BFS / Dijkstra / tree-prune per
//! source. The legacy path allocated four node-count-sized vectors per
//! source (`bfs_distances`, SPT parents, prune keep-marks, and the
//! per-tree parent slab), which at 10k+ nodes makes the allocator and
//! cache misses — not graph traversal — the dominant cost.
//!
//! [`RoutingScratch`] replaces all of that with slabs that are allocated
//! once and recycled across runs using *epoch stamps*: each slot carries
//! the epoch in which it was last written, and a slot is only meaningful
//! when its stamp matches the current epoch. Starting a new run is a
//! single counter increment — O(touched), not O(n) — and no per-run
//! allocation survives.
//!
//! The arena provides:
//!
//! * [`RoutingScratch::bfs`] — hop distances from one root, matching
//!   [`crate::bfs::bfs_distances`] exactly;
//! * [`RoutingScratch::spt_parent`] — the canonical lowest-id-closer
//!   parent of [`crate::spt::ShortestPathTree`], memoized on demand so a
//!   pruned multicast tree only pays for parents along kept paths;
//! * [`RoutingScratch::dijkstra`] — weighted shortest paths on an
//!   indexed 4-ary heap with decrease-key, matching
//!   [`crate::dijkstra::dijkstra`] bit for bit (same
//!   [`crate::tiebreak::offer_wins`] rule; see that module for why heap
//!   layout cannot change results);
//! * [`RoutingScratch::bfs_from_seeds`] — the multi-source BFS used by
//!   Steiner tree growth, recording the first discoverer of each node in
//!   the exact seed-ascending queue order the legacy implementation used;
//! * a mark set and an auxiliary tag set with an independent lifetime
//!   ([`RoutingScratch::clear_marks`]), for prune keep-sets, Steiner
//!   in-tree membership, and shared-tree re-rooting.

use crate::adjacency::Adjacency;
use crate::node::NodeId;
use crate::tiebreak::offer_wins;

/// Distance value of a touched-but-unreached slot.
const INF: u64 = u64::MAX;
/// Parent slot not yet computed (distinct from "computed, root/none").
const PARENT_UNSET: u32 = u32::MAX;
/// Parent computed: the node is a root (or has no closer neighbor).
const PARENT_NONE: u32 = u32::MAX - 1;
/// The node is not currently in the heap.
const NOT_IN_HEAP: u32 = u32::MAX;

/// Reusable arena for per-source shortest-path runs. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct RoutingScratch {
    /// Current run epoch; `stamp[i] == epoch` marks slot `i` live.
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<u64>,
    parent: Vec<u32>,
    heap_pos: Vec<u32>,
    /// Mark/aux epoch, independent of the run epoch: Steiner keeps its
    /// in-tree set alive across many BFS epochs.
    mark_epoch: u32,
    mark_stamp: Vec<u32>,
    aux_stamp: Vec<u32>,
    aux: Vec<u32>,
    heap: Vec<u32>,
    /// BFS frontier: a plain vec with a read cursor instead of a ring
    /// buffer — every node enters at most once per run, so the vec never
    /// needs to wrap and pops compile to an indexed read.
    queue: Vec<u32>,
    queue_head: usize,
}

impl RoutingScratch {
    /// Creates an empty arena; slabs grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resident bytes of the arena's slabs.
    pub fn slab_bytes(&self) -> usize {
        self.stamp.len() * 4
            + self.dist.len() * 8
            + self.parent.len() * 4
            + self.heap_pos.len() * 4
            + self.mark_stamp.len() * 4
            + self.aux_stamp.len() * 4
            + self.aux.len() * 4
            + self.heap.capacity() * 4
            + self.queue.capacity() * 4
    }

    /// Starts a fresh run over `n` nodes, invalidating all distance,
    /// parent, and heap state from the previous run in O(1) (amortized:
    /// stamps are cleared in bulk once every `u32::MAX` runs).
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, INF);
            self.parent.resize(n, PARENT_UNSET);
            self.heap_pos.resize(n, NOT_IN_HEAP);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
        self.queue.clear();
        self.queue_head = 0;
    }

    /// Pops the next BFS frontier node, if any.
    #[inline]
    fn queue_pop(&mut self) -> Option<u32> {
        let v = self.queue.get(self.queue_head).copied();
        self.queue_head += v.is_some() as usize;
        v
    }

    /// Ensures slot `i` is stamped for the current epoch, resetting it on
    /// first touch.
    #[inline]
    fn touch(&mut self, i: usize) {
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.dist[i] = INF;
            self.parent[i] = PARENT_UNSET;
            self.heap_pos[i] = NOT_IN_HEAP;
        }
    }

    /// Distance of `v` in the current run, or `None` if unreached.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Option<u64> {
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.epoch && self.dist[i] != INF {
            Some(self.dist[i])
        } else {
            None
        }
    }

    /// Parent of `v` recorded by the current run (`None` for roots,
    /// unreached nodes, and — for BFS runs — nodes whose SPT parent has
    /// not been demanded yet; use [`Self::spt_parent`] there).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.epoch && self.parent[i] < PARENT_NONE {
            Some(NodeId(self.parent[i]))
        } else {
            None
        }
    }

    /// Runs BFS from `root`, recording hop distances only. Identical to
    /// [`crate::bfs::bfs_distances`]: `dist(v)` is `Some(hops)` exactly
    /// for reachable `v`. Parents stay unset so [`Self::spt_parent`] can
    /// memoize canonical parents on demand.
    pub fn bfs<A: Adjacency>(&mut self, graph: &A, root: NodeId) {
        self.bfs_until_marked(graph, root, usize::MAX);
    }

    /// BFS from `root` that stops once `pending` currently-marked nodes
    /// have been *discovered* (final distance assigned). Pass
    /// `usize::MAX` to flood the whole component.
    ///
    /// Every distance this records equals the full-flood distance, and —
    /// because all nodes strictly closer than the last-discovered mark
    /// are already settled — [`Self::spt_parent`] chains walked from any
    /// marked node are bit-identical to chains after a full flood:
    /// candidate predecessors sit one hop *closer*, so every candidate
    /// has its final distance recorded, and undiscovered neighbors are
    /// correctly rejected (they can only be at equal or greater
    /// distance). The multicast-tree builders exploit this by marking a
    /// source's destinations and paying only for the flood up to the
    /// farthest one.
    pub fn bfs_until_marked<A: Adjacency>(&mut self, graph: &A, root: NodeId, mut pending: usize) {
        self.begin(graph.node_count());
        self.touch(root.index());
        self.dist[root.index()] = 0;
        self.parent[root.index()] = PARENT_NONE;
        if self.is_marked(root) {
            pending = pending.saturating_sub(1);
        }
        if pending == 0 {
            return;
        }
        self.queue.push(root.0);
        'flood: while let Some(u) = self.queue_pop() {
            let du = self.dist[u as usize];
            for &v in graph.neighbors(NodeId(u)) {
                let i = v.index();
                if self.stamp[i] != self.epoch {
                    // Discovery: lighter than `touch` — BFS never reads
                    // `heap_pos`, and a later Dijkstra epoch re-touches.
                    self.stamp[i] = self.epoch;
                    self.dist[i] = du + 1;
                    self.parent[i] = PARENT_UNSET;
                    if self.mark_stamp.get(i) == Some(&self.mark_epoch) {
                        pending -= 1;
                        if pending == 0 {
                            break 'flood;
                        }
                    }
                    self.queue.push(v.0);
                }
            }
        }
    }

    /// The canonical SPT parent of `v` for the BFS run of the current
    /// epoch: the lowest-id neighbor one hop closer to the root, exactly
    /// as [`crate::spt::ShortestPathTree::build`] assigns it — but
    /// computed (and memoized) only for the nodes actually asked about.
    ///
    /// Returns `None` for the root and for unreached nodes. Must only be
    /// used after [`Self::bfs`]; mixing with [`Self::dijkstra`] or
    /// [`Self::bfs_from_seeds`] in the same epoch would read their
    /// parent records instead.
    pub fn spt_parent<A: Adjacency>(&mut self, graph: &A, v: NodeId) -> Option<NodeId> {
        let i = v.index();
        if i >= self.stamp.len() || self.stamp[i] != self.epoch || self.dist[i] == INF {
            return None;
        }
        if self.parent[i] != PARENT_UNSET {
            return if self.parent[i] == PARENT_NONE {
                None
            } else {
                Some(NodeId(self.parent[i]))
            };
        }
        let dv = self.dist[i];
        let mut best: Option<NodeId> = None;
        for &u in graph.neighbors(v) {
            if self.dist(u) == Some(dv - 1) && offer_wins(dv, u, best.map(|_| dv), best) {
                best = Some(u);
            }
        }
        debug_assert!(best.is_some(), "non-root reachable node must have a parent");
        self.parent[i] = best.map_or(PARENT_NONE, |p| p.0);
        best
    }

    /// Multi-source BFS used for Steiner tree growth: all `seeds` start
    /// at distance 0 and are enqueued in the order given (callers pass
    /// ascending id order to reproduce the legacy queue order), and each
    /// discovered node's parent records its *first discoverer* — the
    /// `via` pointer the attach walk follows. Seeds get no parent.
    pub fn bfs_from_seeds<A: Adjacency>(&mut self, graph: &A, seeds: &[NodeId]) {
        self.begin(graph.node_count());
        for &s in seeds {
            self.touch(s.index());
            self.dist[s.index()] = 0;
            self.parent[s.index()] = PARENT_NONE;
            self.queue.push(s.0);
        }
        while let Some(u) = self.queue_pop() {
            let du = self.dist[u as usize];
            for &v in graph.neighbors(NodeId(u)) {
                let i = v.index();
                if self.stamp[i] != self.epoch {
                    self.stamp[i] = self.epoch;
                    self.dist[i] = du + 1;
                    self.parent[i] = u;
                    self.queue.push(v.0);
                }
            }
        }
    }

    /// Runs Dijkstra from `root` on an indexed 4-ary heap with
    /// decrease-key, with edge weights from `weight(u, v)`. Produces the
    /// same distances and parents as [`crate::dijkstra::dijkstra`]: both
    /// apply [`offer_wins`] to every optimal predecessor, which pins the
    /// result independent of heap order.
    pub fn dijkstra<A: Adjacency, W>(&mut self, graph: &A, root: NodeId, mut weight: W)
    where
        W: FnMut(NodeId, NodeId) -> u64,
    {
        self.begin(graph.node_count());
        self.touch(root.index());
        self.dist[root.index()] = 0;
        self.parent[root.index()] = PARENT_NONE;
        self.heap_push(root.0);
        while let Some(u) = self.heap_pop() {
            let du = self.dist[u as usize];
            for &v in graph.neighbors(NodeId(u)) {
                let cand = du + weight(NodeId(u), v);
                let i = v.index();
                self.touch(i);
                let incumbent_dist = (self.dist[i] != INF).then_some(self.dist[i]);
                let incumbent_parent =
                    (self.parent[i] < PARENT_NONE).then_some(NodeId(self.parent[i]));
                if offer_wins(cand, NodeId(u), incumbent_dist, incumbent_parent) {
                    self.dist[i] = cand;
                    self.parent[i] = u;
                    self.heap_push(v.0);
                }
            }
        }
    }

    /// Appends the root→`v` chain of the current run to `path` (root
    /// first), following recorded parents. Returns `false` (leaving
    /// `path` untouched) if `v` is unreached. For BFS runs, parents must
    /// have been materialized along the chain via [`Self::spt_parent`].
    pub fn extend_path_to(&self, v: NodeId, path: &mut Vec<NodeId>) -> bool {
        if self.dist(v).is_none() {
            return false;
        }
        let start = path.len();
        path.push(v);
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path[start..].reverse();
        true
    }

    // ----- mark / aux set (independent lifetime) -----

    /// Invalidates the mark and aux sets and ensures they cover `n`
    /// nodes. Marks live across [`Self::begin`] calls: Steiner keeps its
    /// in-tree set while re-running BFS every growth round.
    pub fn clear_marks(&mut self, n: usize) {
        if self.mark_stamp.len() < n {
            self.mark_stamp.resize(n, 0);
            self.aux_stamp.resize(n, 0);
            self.aux.resize(n, 0);
        }
        if self.mark_epoch == u32::MAX {
            self.mark_stamp.iter_mut().for_each(|s| *s = 0);
            self.aux_stamp.iter_mut().for_each(|s| *s = 0);
            self.mark_epoch = 0;
        }
        self.mark_epoch += 1;
    }

    /// Marks `v`; returns `true` if it was not marked before.
    #[inline]
    pub fn mark(&mut self, v: NodeId) -> bool {
        let fresh = self.mark_stamp[v.index()] != self.mark_epoch;
        self.mark_stamp[v.index()] = self.mark_epoch;
        fresh
    }

    /// Whether `v` is marked.
    #[inline]
    pub fn is_marked(&self, v: NodeId) -> bool {
        v.index() < self.mark_stamp.len() && self.mark_stamp[v.index()] == self.mark_epoch
    }

    /// Tags `v` with an arbitrary value, valid until the next
    /// [`Self::clear_marks`]. Used by shared-tree re-rooting to record,
    /// for each ancestor of the source, the chain successor toward it.
    #[inline]
    pub fn set_aux(&mut self, v: NodeId, value: u32) {
        self.aux_stamp[v.index()] = self.mark_epoch;
        self.aux[v.index()] = value;
    }

    /// The tag set on `v` since the last [`Self::clear_marks`], if any.
    #[inline]
    pub fn aux(&self, v: NodeId) -> Option<u32> {
        if v.index() < self.aux_stamp.len() && self.aux_stamp[v.index()] == self.mark_epoch {
            Some(self.aux[v.index()])
        } else {
            None
        }
    }

    // ----- indexed 4-ary min-heap keyed by (dist, node id) -----

    #[inline]
    fn heap_key(&self, node: u32) -> (u64, u32) {
        (self.dist[node as usize], node)
    }

    /// Inserts `node` or restores heap order after its key decreased.
    fn heap_push(&mut self, node: u32) {
        let pos = self.heap_pos[node as usize];
        if pos == NOT_IN_HEAP {
            self.heap.push(node);
            self.heap_pos[node as usize] = (self.heap.len() - 1) as u32;
            self.sift_up(self.heap.len() - 1);
        } else {
            self.sift_up(pos as usize);
        }
    }

    fn heap_pop(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        self.heap_pos[top as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        let node = self.heap[i];
        let key = self.heap_key(node);
        while i > 0 {
            let up = (i - 1) / 4;
            let above = self.heap[up];
            if self.heap_key(above) <= key {
                break;
            }
            self.heap[i] = above;
            self.heap_pos[above as usize] = i as u32;
            i = up;
        }
        self.heap[i] = node;
        self.heap_pos[node as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize) {
        let node = self.heap[i];
        let key = self.heap_key(node);
        loop {
            let first_child = i * 4 + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let mut best = first_child;
            let mut best_key = self.heap_key(self.heap[first_child]);
            let end = (first_child + 4).min(self.heap.len());
            for c in first_child + 1..end {
                let ck = self.heap_key(self.heap[c]);
                if ck < best_key {
                    best = c;
                    best_key = ck;
                }
            }
            if key <= best_key {
                break;
            }
            let child = self.heap[best];
            self.heap[i] = child;
            self.heap_pos[child as usize] = i as u32;
            i = best;
        }
        self.heap[i] = node;
        self.heap_pos[node as usize] = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Graph;
    use crate::bfs::bfs_distances;
    use crate::dijkstra::dijkstra;
    use crate::spt::ShortestPathTree;

    /// A 2×3 grid plus a pendant and an isolated node:
    /// 0-1-2
    /// | | |
    /// 3-4-5-6    7
    fn grid() -> Graph {
        let mut g = Graph::new(8);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (3, 4),
            (4, 5),
            (0, 3),
            (1, 4),
            (2, 5),
            (5, 6),
        ] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    fn weight(u: NodeId, v: NodeId) -> u64 {
        // Deterministic, asymmetric-free positive weights.
        1 + ((u.0 ^ v.0) % 3) as u64
    }

    #[test]
    fn bfs_matches_bfs_distances_for_every_root() {
        let g = grid();
        let mut scratch = RoutingScratch::new();
        for root in g.nodes() {
            scratch.bfs(&g, root);
            let oracle = bfs_distances(&g, root);
            for v in g.nodes() {
                assert_eq!(
                    scratch.dist(v),
                    oracle[v.index()].map(u64::from),
                    "root {root} node {v}"
                );
            }
        }
    }

    #[test]
    fn spt_parent_matches_shortest_path_tree() {
        let g = grid();
        let mut scratch = RoutingScratch::new();
        for root in g.nodes() {
            scratch.bfs(&g, root);
            let spt = ShortestPathTree::build(&g, root);
            for v in g.nodes() {
                assert_eq!(
                    scratch.spt_parent(&g, v),
                    spt.parent(v),
                    "root {root} node {v}"
                );
            }
        }
    }

    #[test]
    fn dijkstra_matches_binary_heap_dijkstra() {
        let g = grid();
        let mut scratch = RoutingScratch::new();
        for root in g.nodes() {
            scratch.dijkstra(&g, root, weight);
            let oracle = dijkstra(&g, root, weight);
            for v in g.nodes() {
                assert_eq!(
                    scratch.dist(v),
                    oracle.dist[v.index()],
                    "root {root} node {v}"
                );
                assert_eq!(
                    scratch.parent(v),
                    oracle.parent[v.index()],
                    "root {root} node {v}"
                );
            }
        }
    }

    #[test]
    fn dijkstra_reproduces_low_id_tie_break() {
        // Same diamond as dijkstra::tests::tie_break_prefers_low_id_parent.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let mut scratch = RoutingScratch::new();
        scratch.dijkstra(&g, NodeId(0), |_, _| 1);
        assert_eq!(scratch.parent(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn reuse_across_runs_is_identical_to_fresh_scratch() {
        let g = grid();
        let mut small = Graph::new(3);
        small.add_edge(NodeId(0), NodeId(1));
        small.add_edge(NodeId(1), NodeId(2));

        // Interleave runs over graphs of different sizes, then compare
        // against a fresh arena on the final run.
        let mut reused = RoutingScratch::new();
        reused.dijkstra(&g, NodeId(6), weight);
        reused.bfs(&small, NodeId(2));
        reused.bfs(&g, NodeId(1));
        for v in g.nodes() {
            reused.spt_parent(&g, v);
        }
        reused.bfs(&g, NodeId(4));

        let mut fresh = RoutingScratch::new();
        fresh.bfs(&g, NodeId(4));
        for v in g.nodes() {
            assert_eq!(reused.dist(v), fresh.dist(v), "{v}");
            assert_eq!(reused.spt_parent(&g, v), fresh.spt_parent(&g, v), "{v}");
        }
    }

    #[test]
    fn bfs_from_seeds_records_first_discoverer() {
        let g = grid();
        let mut scratch = RoutingScratch::new();
        scratch.bfs_from_seeds(&g, &[NodeId(0), NodeId(5)]);
        assert_eq!(scratch.dist(NodeId(0)), Some(0));
        assert_eq!(scratch.dist(NodeId(5)), Some(0));
        assert_eq!(scratch.parent(NodeId(0)), None);
        // 4 is adjacent to both seeds; seed 0's neighbors enqueue first,
        // but 4 is only adjacent to seed 5 among the seeds... check: 4's
        // neighbors are 1, 3, 5. Seed 0 discovers 1 and 3; seed 5
        // discovers 4 and 6 directly.
        assert_eq!(scratch.parent(NodeId(4)), Some(NodeId(5)));
        assert_eq!(scratch.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(scratch.dist(NodeId(1)), Some(1));
        assert_eq!(scratch.dist(NodeId(7)), None);
    }

    #[test]
    fn marks_survive_begin_but_not_clear_marks() {
        let g = grid();
        let mut scratch = RoutingScratch::new();
        scratch.clear_marks(g.node_count());
        assert!(scratch.mark(NodeId(3)));
        assert!(!scratch.mark(NodeId(3)));
        scratch.set_aux(NodeId(3), 42);
        scratch.bfs(&g, NodeId(0)); // begin() must not disturb marks
        assert!(scratch.is_marked(NodeId(3)));
        assert_eq!(scratch.aux(NodeId(3)), Some(42));
        assert_eq!(scratch.aux(NodeId(4)), None);
        scratch.clear_marks(g.node_count());
        assert!(!scratch.is_marked(NodeId(3)));
        assert_eq!(scratch.aux(NodeId(3)), None);
    }

    #[test]
    fn extend_path_follows_memoized_parents() {
        let g = grid();
        let mut scratch = RoutingScratch::new();
        scratch.bfs(&g, NodeId(0));
        // Materialize parents along the chain to 6.
        let mut cur = NodeId(6);
        while let Some(p) = scratch.spt_parent(&g, cur) {
            cur = p;
        }
        let mut path = Vec::new();
        assert!(scratch.extend_path_to(NodeId(6), &mut path));
        let spt = ShortestPathTree::build(&g, NodeId(0));
        assert_eq!(path, spt.path_to(NodeId(6)).unwrap());
        assert!(!scratch.extend_path_to(NodeId(7), &mut path));
    }
}
