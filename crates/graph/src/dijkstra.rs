//! Dijkstra shortest paths for graphs with non-negative link weights.
//!
//! The simulator's default routing is hop-based BFS, but milestone routing
//! and link-quality-aware route selection (§3, "Flexibility Trade-Off in
//! Routing") need weighted shortest paths, e.g. with weights derived from
//! expected transmission counts over lossy links.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::adjacency::Graph;
use crate::node::NodeId;
use crate::tiebreak::offer_wins;

/// Result of a single-source Dijkstra run.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Distance from the root to each node; `None` if unreachable.
    pub dist: Vec<Option<u64>>,
    /// Predecessor of each node on its canonical shortest path; `None` for
    /// the root and unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Reconstructs the root→`target` path (inclusive of both endpoints),
    /// or `None` if `target` is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        self.dist[target.index()]?;
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Runs Dijkstra from `root`, with the weight of edge `{u, v}` supplied by
/// `weight(u, v)`.
///
/// Ties are broken toward the lower-id predecessor so the returned
/// shortest-path forest is canonical: the same inputs always produce the
/// same routes.
pub fn dijkstra<W>(graph: &Graph, root: NodeId, mut weight: W) -> ShortestPaths
where
    W: FnMut(NodeId, NodeId) -> u64,
{
    let n = graph.node_count();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist[root.index()] = Some(0);
    heap.push(Reverse((0, root)));
    while let Some(Reverse((du, u))) = heap.pop() {
        if dist[u.index()] != Some(du) {
            continue; // stale entry
        }
        for &v in graph.neighbors(u) {
            let w = weight(u, v);
            let cand = du + w;
            if offer_wins(cand, u, dist[v.index()], parent[v.index()]) {
                dist[v.index()] = Some(cand);
                parent[v.index()] = Some(u);
                heap.push(Reverse((cand, v)));
            }
        }
    }
    ShortestPaths { dist, parent }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 --1-- 1 --1-- 2
    ///  \------5------/
    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        g
    }

    fn tri_weight(u: NodeId, v: NodeId) -> u64 {
        if (u.0, v.0) == (0, 2) || (u.0, v.0) == (2, 0) {
            5
        } else {
            1
        }
    }

    #[test]
    fn picks_the_cheaper_two_hop_route() {
        let sp = dijkstra(&triangle(), NodeId(0), tri_weight);
        assert_eq!(sp.dist, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(
            sp.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn unit_weights_match_bfs() {
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (3, 5)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let sp = dijkstra(&g, NodeId(0), |_, _| 1);
        let bfs = crate::bfs::bfs_distances(&g, NodeId(0));
        for (v, &hops) in bfs.iter().enumerate() {
            assert_eq!(sp.dist[v].map(|d| d as u32), hops);
        }
    }

    #[test]
    fn tie_break_prefers_low_id_parent() {
        // Two equal routes to node 3: via 1 or via 2.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let sp = dijkstra(&g, NodeId(0), |_, _| 1);
        assert_eq!(sp.parent[3], Some(NodeId(1)));
    }

    #[test]
    fn unreachable_has_no_path() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        let sp = dijkstra(&g, NodeId(0), |_, _| 1);
        assert_eq!(sp.path_to(NodeId(2)), None);
    }

    #[test]
    fn path_to_root_is_singleton() {
        let sp = dijkstra(&triangle(), NodeId(0), tri_weight);
        assert_eq!(sp.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }
}
