//! Takahashi–Matsuyama Steiner-tree heuristic for multicast trees.
//!
//! The paper's Figure 5 discussion observes that its "standard algorithm
//! for constructing single-source multicast trees … tends to create many
//! edges that are not shared across trees" and calls joint
//! routing/processing design future work. This module provides the
//! classic alternative: grow the tree from the source by repeatedly
//! attaching the *closest remaining destination* via its shortest path to
//! the current tree (2-approximation of the Steiner minimum). Trees built
//! this way use fewer edges than a union of source-rooted shortest paths,
//! at the cost of longer individual routes.

use std::collections::VecDeque;

use crate::adjacency::Graph;
use crate::node::NodeId;
use crate::spt::MulticastTree;

/// Builds a multicast tree rooted at `root` spanning the reachable
/// `terminals` with the Takahashi–Matsuyama heuristic. Ties (equidistant
/// terminals, equal-length attachment paths) break toward lower node ids,
/// so the construction is deterministic.
pub fn takahashi_matsuyama(graph: &Graph, root: NodeId, terminals: &[NodeId]) -> MulticastTree {
    let n = graph.node_count();
    let mut in_tree = vec![false; n];
    in_tree[root.index()] = true;
    // Parent pointers toward the root (the final tree directs edges away
    // from the root; MulticastTree stores child → parent).
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    let mut remaining: Vec<NodeId> = terminals.iter().copied().filter(|&t| t != root).collect();
    remaining.sort_unstable();
    remaining.dedup();
    let mut reached: Vec<NodeId> = if terminals.contains(&root) {
        vec![root]
    } else {
        Vec::new()
    };

    while !remaining.is_empty() {
        // Multi-source BFS from every tree node.
        let mut dist = vec![u32::MAX; n];
        let mut via: Vec<Option<NodeId>> = vec![None; n];
        let mut queue = VecDeque::new();
        for i in 0..n {
            if in_tree[i] {
                dist[i] = 0;
                queue.push_back(NodeId::from_index(i));
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    via[v.index()] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        // Closest reachable terminal (lowest id on ties — `remaining` is
        // sorted and we use strict improvement).
        let Some((&next, _)) = remaining
            .iter()
            .map(|t| (t, dist[t.index()]))
            .filter(|&(_, d)| d != u32::MAX)
            .min_by_key(|&(t, d)| (d, *t))
        else {
            break; // every remaining terminal is unreachable
        };
        // Attach the path from the tree to `next`.
        let mut cur = next;
        while !in_tree[cur.index()] {
            let prev = via[cur.index()].expect("reachable node has a BFS predecessor");
            parent[cur.index()] = Some(prev);
            in_tree[cur.index()] = true;
            cur = prev;
        }
        reached.push(next);
        remaining.retain(|&t| t != next);
    }

    MulticastTree::from_parents(root, parent, reached)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2
    /// |   |
    /// 3-4-5
    fn grid() -> Graph {
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 3), (2, 5), (3, 4), (4, 5)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    #[test]
    fn spans_all_terminals() {
        let t = takahashi_matsuyama(&grid(), NodeId(0), &[NodeId(2), NodeId(4)]);
        assert_eq!(t.destinations(), &[NodeId(2), NodeId(4)]);
        for &d in t.destinations() {
            assert!(t.path_to(d).is_some());
        }
        assert_eq!(t.edges().count(), t.size() - 1);
    }

    #[test]
    fn reuses_tree_edges_for_near_terminals() {
        // Terminals 1 and 2 lie on one line from 0: one shared path.
        let t = takahashi_matsuyama(&grid(), NodeId(0), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.size(), 3); // 0, 1, 2 only
    }

    #[test]
    fn steiner_beats_shortest_path_union_on_the_classic_case() {
        // Star-with-long-arms: SPT union takes separate arms; Steiner
        // routes through the shared spine.
        // 0 - 1 - 2 - 3 (spine), terminals 4,5 hang off 3; plus direct
        // long paths 0-6-7-4 and 0-8-9-5 of equal length.
        let mut g = Graph::new(10);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (3, 5),
            (0, 6),
            (6, 7),
            (7, 4),
            (0, 8),
            (8, 9),
            (9, 5),
        ] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let steiner = takahashi_matsuyama(&g, NodeId(0), &[NodeId(4), NodeId(5)]);
        let spt =
            crate::spt::ShortestPathTree::build(&g, NodeId(0)).prune_to(&[NodeId(4), NodeId(5)]);
        assert!(
            steiner.size() <= spt.size(),
            "steiner {} nodes vs spt {} nodes",
            steiner.size(),
            spt.size()
        );
    }

    #[test]
    fn unreachable_terminals_are_dropped() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        // 2, 3 disconnected.
        let t = takahashi_matsuyama(&g, NodeId(0), &[NodeId(1), NodeId(3)]);
        assert_eq!(t.destinations(), &[NodeId(1)]);
    }

    #[test]
    fn root_as_terminal_is_fine() {
        let t = takahashi_matsuyama(&grid(), NodeId(0), &[NodeId(0), NodeId(5)]);
        assert_eq!(t.destinations(), &[NodeId(0), NodeId(5)]);
    }

    #[test]
    fn deterministic() {
        let g = grid();
        let a = takahashi_matsuyama(&g, NodeId(1), &[NodeId(3), NodeId(5), NodeId(4)]);
        let b = takahashi_matsuyama(&g, NodeId(1), &[NodeId(3), NodeId(5), NodeId(4)]);
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
