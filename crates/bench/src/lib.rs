//! Figure-reproduction harness for the many-to-many aggregation paper.
//!
//! One binary per figure in §4 (`fig3` … `fig7`, plus `all_figures`),
//! each printing the same series the paper plots as a CSV-ish table:
//! x-value in the first column, one column per algorithm, average round
//! energy in mJ (Figures 3–6) or percent improvement (Figure 7).
//!
//! Absolute joules depend on radio constants the paper does not publish;
//! the reproduction target is the *shape*: who wins, by what factor, and
//! where the crossovers fall. See EXPERIMENTS.md for paper-vs-measured
//! notes per figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod stats;
pub mod svg;

use m2m_core::baselines::{flood_round_cost, plan_for_algorithm, Algorithm};
use m2m_core::schedule::build_schedule;
use m2m_core::spec::AggregationSpec;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_netsim::{Network, RoutingMode, RoutingTables};

/// Seeds averaged per data point. The paper averages over random
/// workloads; three seeds keep the harness fast while smoothing noise.
pub const SEEDS: [u64; 3] = [11, 23, 47];

/// Computes one algorithm's average round energy (mJ) on one workload.
pub fn round_energy_mj(network: &Network, spec: &AggregationSpec, algorithm: Algorithm) -> f64 {
    match algorithm {
        Algorithm::Flood => flood_round_cost(network, spec).total_mj(),
        _ => {
            let routing = RoutingTables::build(
                network,
                &spec.source_to_destinations(),
                RoutingMode::ShortestPathTrees,
            );
            let plan = plan_for_algorithm(network, spec, &routing, algorithm);
            let schedule = build_schedule(spec, &plan).expect("plan must be schedulable");
            schedule.round_cost(network.energy()).total_mj()
        }
    }
}

/// Average round energy over the standard seed set for a workload-config
/// generator (`make_config(seed)`).
pub fn averaged_energy_mj(
    network: &Network,
    algorithm: Algorithm,
    make_config: impl FnMut(u64) -> WorkloadConfig,
) -> f64 {
    energy_summary_mj(network, algorithm, make_config).mean
}

/// Per-seed round energies summarized as mean ± spread.
pub fn energy_summary_mj(
    network: &Network,
    algorithm: Algorithm,
    mut make_config: impl FnMut(u64) -> WorkloadConfig,
) -> stats::Summary {
    let samples: Vec<f64> = SEEDS
        .iter()
        .map(|&seed| {
            let spec = generate_workload(network, &make_config(seed));
            round_energy_mj(network, &spec, algorithm)
        })
        .collect();
    stats::summarize(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2m_netsim::Deployment;

    #[test]
    fn harness_produces_positive_energies() {
        let net = Network::with_default_energy(Deployment::great_duck_island(1));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(7, 10, 3));
        for alg in [
            Algorithm::Optimal,
            Algorithm::Multicast,
            Algorithm::Aggregation,
            Algorithm::Flood,
        ] {
            let e = round_energy_mj(&net, &spec, alg);
            assert!(e > 0.0, "{} energy must be positive", alg.name());
        }
    }

    #[test]
    fn optimal_is_cheapest_planned_algorithm() {
        let net = Network::with_default_energy(Deployment::great_duck_island(1));
        let spec = generate_workload(&net, &WorkloadConfig::paper_default(14, 15, 9));
        let optimal = round_energy_mj(&net, &spec, Algorithm::Optimal);
        let multicast = round_energy_mj(&net, &spec, Algorithm::Multicast);
        let aggregation = round_energy_mj(&net, &spec, Algorithm::Aggregation);
        assert!(optimal <= multicast + 1e-9);
        assert!(optimal <= aggregation + 1e-9);
    }
}
