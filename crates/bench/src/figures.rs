//! The data behind each paper figure, computed once and shared by the
//! CSV binaries (`fig3`…`fig7`) and the SVG plotter (`plots`).

use m2m_core::baselines::Algorithm;
use m2m_core::plan::GlobalPlan;
use m2m_core::suppression::{OverridePolicy, SuppressionSim};
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

use crate::averaged_energy_mj;

/// One figure's table: x values down the rows, one column per series.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Figure title (paper numbering).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Series names, in column order.
    pub columns: Vec<String>,
    /// `(x, series values)` rows.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl FigureData {
    /// Prints the figure as the CSV table the `figN` binaries emit.
    pub fn print_csv(&self) {
        println!("# {}", self.title);
        let mut header = vec![self.x_label.replace(' ', "_")];
        header.extend(self.columns.clone());
        println!("{}", header.join(","));
        for (x, values) in &self.rows {
            // Round away float-accumulation noise in the x column.
            let x = (x * 1000.0).round() / 1000.0;
            let mut row = vec![format!("{x}")];
            row.extend(values.iter().map(|v| format!("{v:.1}")));
            println!("{}", row.join(","));
        }
    }

    /// Converts to an SVG chart.
    pub fn to_chart(&self) -> crate::svg::Chart {
        crate::svg::Chart {
            title: self.title.clone(),
            x_label: self.x_label.clone(),
            y_label: self.y_label.clone(),
            series: self
                .columns
                .iter()
                .enumerate()
                .map(|(i, label)| crate::svg::Series {
                    label: label.clone(),
                    points: self.rows.iter().map(|(x, v)| (*x, v[i])).collect(),
                })
                .collect(),
        }
    }
}

const FOUR_ALGS: [Algorithm; 4] = [
    Algorithm::Optimal,
    Algorithm::Multicast,
    Algorithm::Aggregation,
    Algorithm::Flood,
];

fn sweep(
    network: &Network,
    algorithms: &[Algorithm],
    xs: impl IntoIterator<Item = f64>,
    mut config_for: impl FnMut(f64, u64) -> WorkloadConfig,
) -> Vec<(f64, Vec<f64>)> {
    xs.into_iter()
        .map(|x| {
            let values = algorithms
                .iter()
                .map(|&alg| averaged_energy_mj(network, alg, |seed| config_for(x, seed)))
                .collect();
            (x, values)
        })
        .collect()
}

/// Figure 3: varying the number of aggregation functions.
pub fn figure3_data() -> FigureData {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));
    let n = network.node_count();
    let rows = sweep(
        &network,
        &FOUR_ALGS,
        (1..=10).map(|i| f64::from(i) * 10.0),
        |pct, seed| {
            WorkloadConfig::paper_default(
                ((n as f64 * pct / 100.0).ceil() as usize).min(n),
                20,
                seed,
            )
        },
    );
    FigureData {
        title: "Figure 3: varying number of aggregation functions".into(),
        x_label: "percent of nodes set as destinations".into(),
        y_label: "avg round energy (mJ)".into(),
        columns: FOUR_ALGS.iter().map(|a| a.name().to_string()).collect(),
        rows,
    }
}

/// Figure 4: varying the number of sources per function.
pub fn figure4_data() -> FigureData {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));
    let destinations = network.node_count() / 5;
    let rows = sweep(
        &network,
        &FOUR_ALGS,
        (1..=8).map(|i| f64::from(i) * 5.0),
        |sources, seed| WorkloadConfig::paper_default(destinations, sources as usize, seed),
    );
    FigureData {
        title: "Figure 4: varying number of sources per function".into(),
        x_label: "number of sources per destination".into(),
        y_label: "avg round energy (mJ)".into(),
        columns: FOUR_ALGS.iter().map(|a| a.name().to_string()).collect(),
        rows,
    }
}

/// Figure 5: varying the dispersion factor.
pub fn figure5_data() -> FigureData {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));
    let destinations = network.node_count() / 5;
    let algorithms = Algorithm::PLANNED;
    let rows = sweep(
        &network,
        &algorithms,
        (0..=10).map(|i| f64::from(i) / 10.0),
        |d, seed| WorkloadConfig {
            destination_count: destinations,
            sources_per_destination: 20,
            selection: SourceSelection::Dispersion {
                dispersion: d,
                max_hops: 4,
            },
            kind: m2m_core::agg::AggregateKind::WeightedAverage,
            seed,
        },
    );
    FigureData {
        title: "Figure 5: varying the dispersion factor".into(),
        x_label: "d".into(),
        y_label: "avg round energy (mJ)".into(),
        columns: algorithms.iter().map(|a| a.name().to_string()).collect(),
        rows,
    }
}

/// Figure 6: increasing network size.
pub fn figure6_data() -> FigureData {
    let node_counts = [50usize, 100, 150, 200, 250];
    let deployments = Deployment::scaled_series(&node_counts, 1);
    let algorithms = Algorithm::PLANNED;
    let rows = deployments
        .into_iter()
        .map(|deployment| {
            let network = Network::with_default_energy(deployment);
            let n = network.node_count();
            let values = algorithms
                .iter()
                .map(|&alg| {
                    averaged_energy_mj(&network, alg, |seed| WorkloadConfig {
                        destination_count: n / 4,
                        sources_per_destination: (n * 15) / 100,
                        selection: SourceSelection::Uniform,
                        kind: m2m_core::agg::AggregateKind::WeightedAverage,
                        seed,
                    })
                })
                .collect();
            (n as f64, values)
        })
        .collect();
    FigureData {
        title: "Figure 6: increasing network size".into(),
        x_label: "number of network nodes".into(),
        y_label: "avg round energy (mJ)".into(),
        columns: algorithms.iter().map(|a| a.name().to_string()).collect(),
        rows,
    }
}

/// Figure 7: suppression override policies — percent improvement over the
/// default plan on the same changed values.
pub fn figure7_data() -> FigureData {
    let policies = [
        OverridePolicy::Aggressive,
        OverridePolicy::Medium,
        OverridePolicy::Conservative,
    ];
    let setups: Vec<_> = (0..3u64)
        .map(|i| {
            let net = Network::with_default_energy(Deployment::great_duck_island(100 + i));
            let n = net.node_count();
            let spec = generate_workload(
                &net,
                &WorkloadConfig::paper_default((n * 3) / 10, 25, 7 + i),
            );
            let routing = RoutingTables::build(
                &net,
                &spec.source_to_destinations(),
                RoutingMode::ShortestPathTrees,
            );
            let plan = GlobalPlan::build(&net, &spec, &routing);
            let sim = SuppressionSim::new(&net, &spec, &routing, &plan);
            (spec, sim, i)
        })
        .collect();
    let rows = (0..=6)
        .map(|step| {
            let p = f64::from(step) * 0.05;
            let values = policies
                .iter()
                .map(|&policy| {
                    let mut total = 0.0;
                    for (spec, sim, i) in &setups {
                        let base = sim.average_cost(spec, p, 10, OverridePolicy::None, 1000 + i);
                        let with = sim.average_cost(spec, p, 10, policy, 1000 + i);
                        if base.total_uj() > 0.0 {
                            total += (base.total_uj() - with.total_uj()) / base.total_uj() * 100.0;
                        }
                    }
                    total / setups.len() as f64
                })
                .collect();
            (p, values)
        })
        .collect();
    FigureData {
        title: "Figure 7: override policies under temporal suppression".into(),
        x_label: "probability of value change".into(),
        y_label: "percent improvement in consumption".into(),
        columns: policies.iter().map(|p| p.name().to_string()).collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape_via_shared_path() {
        let data = figure5_data();
        assert_eq!(data.columns, vec!["Optimal", "Multicast", "Aggregation"]);
        assert_eq!(data.rows.len(), 11);
        for (_, values) in &data.rows {
            // Optimal never loses.
            assert!(values[0] <= values[1] + 1e-9);
            assert!(values[0] <= values[2] + 1e-9);
        }
        let chart = data.to_chart();
        let svg = chart.render();
        assert!(svg.contains("Figure 5"));
    }
}
