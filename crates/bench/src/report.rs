//! Shared emission for the committed `BENCH_*.json` artifacts.
//!
//! The benchmark binaries (`bench_optimizer`, `bench_runtime`,
//! `bench_resilience`, `bench_scale`, `m2m_obs`) used to hand-format
//! their JSON with `format!` strings and hand-roll their argument
//! parsing, which drifted apart field by field. They now build a
//! [`JsonValue`] tree through this module: one schema version, one
//! header shape (including the captured `M2M_*` environment), one CLI
//! parser ([`BenchCli`]), one artifact pre-flight ([`check_header`]),
//! and one writer. The schema is versioned so additive sections (like
//! the `"telemetry"` counters introduced in version 2, or the `"env"`
//! capture) never silently change the meaning of an artifact a
//! downstream diff — `scripts/bench_compare.sh` — is watching.

use std::time::Instant;

pub use m2m_core::telemetry::json::JsonValue;

/// Schema version stamped into every benchmark artifact.
///
/// * v1 (implicit): the hand-formatted artifacts, no version field.
/// * v2: adds `schema_version` itself plus the additive `telemetry`
///   section holding a counter/histogram snapshot from an instrumented
///   run. Existing fields keep their v1 names and meanings.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Starts a benchmark report with the header fields every artifact
/// shares: schema version, benchmark name, deployment label, the
/// machine's available parallelism, and the captured `M2M_*`
/// environment.
pub fn bench_report(benchmark: &str, deployment: &str) -> JsonValue {
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    JsonValue::object()
        .with("schema_version", BENCH_SCHEMA_VERSION)
        .with("benchmark", benchmark)
        .with("deployment", deployment)
        .with("available_parallelism", parallelism)
        .with("env", env_section())
}

/// Every `M2M_*` knob set in the process environment, sorted by name.
///
/// Committed artifacts capture the configuration they were produced
/// under, so a diff between two artifacts (`scripts/bench_compare.sh`)
/// can tell a code regression from a knob change.
pub fn env_section() -> JsonValue {
    let mut vars: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("M2M_"))
        .collect();
    vars.sort();
    let mut section = JsonValue::object();
    for (k, v) in vars {
        section.push(&k, v);
    }
    section
}

/// Command-line shape shared by the benchmark binaries:
/// `bin [--smoke] [--check [artifact.json]] [--nodes N1,N2,...]
/// [output.json] [count]`.
#[derive(Clone, Debug)]
pub struct BenchCli {
    /// Reduced run wired into `scripts/verify.sh` gates.
    pub smoke: bool,
    /// Validate an existing artifact instead of benchmarking
    /// (defaults to the binary's output path when the value is omitted).
    pub check: Option<String>,
    /// `--nodes`: deployment size(s), comma separated.
    pub nodes: Vec<usize>,
    /// First positional: where to write the artifact.
    pub out_path: String,
    /// Second positional: a benchmark-specific count (samples, rounds).
    pub count: Option<usize>,
    /// Positionals past the first two, for binary-specific extras.
    pub rest: Vec<String>,
}

impl BenchCli {
    /// Parses `std::env::args`, defaulting the output to `default_out`.
    ///
    /// # Panics
    /// Panics on an unparseable `--nodes` list or a non-numeric count.
    pub fn parse(default_out: &str) -> Self {
        Self::parse_from(std::env::args().skip(1).collect(), default_out)
    }

    fn parse_from(args: Vec<String>, default_out: &str) -> Self {
        let mut cli = BenchCli {
            smoke: false,
            check: None,
            nodes: Vec::new(),
            out_path: default_out.to_string(),
            count: None,
            rest: Vec::new(),
        };
        let mut positional: Vec<&str> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if arg == "--smoke" {
                cli.smoke = true;
            } else if arg == "--check" {
                let next = args.get(i + 1).filter(|a| !a.starts_with("--"));
                if let Some(path) = next {
                    cli.check = Some(path.clone());
                    i += 1;
                } else {
                    cli.check = Some(default_out.to_string());
                }
            } else if let Some(list) =
                arg.strip_prefix("--nodes=").map(str::to_owned).or_else(|| {
                    (arg == "--nodes").then(|| {
                        i += 1;
                        args.get(i).cloned().unwrap_or_default()
                    })
                })
            {
                cli.nodes = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().expect("--nodes takes a comma list of sizes"))
                    .collect();
            } else {
                positional.push(arg);
            }
            i += 1;
        }
        if let Some(out) = positional.first() {
            cli.out_path = (*out).to_string();
        }
        cli.count = positional
            .get(1)
            .map(|s| s.parse().expect("count argument must be an integer"));
        cli.rest = positional.iter().skip(2).map(|s| s.to_string()).collect();
        cli
    }
}

/// Parses an existing artifact and asserts the shared v2 header every
/// `--check` gate relies on (valid JSON, `schema_version == 2`, the
/// expected `benchmark` name), returning the document for the caller's
/// benchmark-specific assertions.
///
/// # Panics
/// Panics with a pointed message on any violation — `--check` runs
/// under `scripts/verify.sh`, where a non-zero exit is the signal.
pub fn check_header(path: &str, benchmark: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let value = JsonValue::parse(&text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e}"));
    let version = value
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("{path}: missing schema_version"));
    assert_eq!(
        version, BENCH_SCHEMA_VERSION,
        "{path}: unexpected schema_version {version}"
    );
    assert_eq!(
        value.get("benchmark").and_then(JsonValue::as_str),
        Some(benchmark),
        "{path}: wrong benchmark field"
    );
    value
}

/// Runs `instrumented` with tracing forced on, then returns the counter
/// snapshot as the report's additive `"telemetry"` section.
///
/// When the process started with tracing off (the default), the registry
/// is cleared before and after so the section covers exactly the closure
/// and the timed phases of the benchmark never pay more than the
/// relaxed-load check. When the operator already enabled tracing via
/// `M2M_TRACE=1`, the flag and accumulated counters are left alone so a
/// trailing `export_if_requested` still sees the whole run.
pub fn telemetry_section(instrumented: impl FnOnce()) -> JsonValue {
    let was_enabled = m2m_core::telemetry::enabled();
    if !was_enabled {
        m2m_core::telemetry::reset();
        m2m_core::telemetry::set_enabled(true);
    }
    instrumented();
    let section = m2m_core::telemetry::snapshot().to_json();
    if !was_enabled {
        m2m_core::telemetry::set_enabled(false);
        m2m_core::telemetry::reset();
    }
    section
}

/// Renders a report, writes it to `path`, and echoes it to stdout (the
/// artifacts double as the benchmark's machine-readable output).
pub fn write_report(path: &str, report: &JsonValue) {
    let text = report.render();
    std::fs::write(path, &text).expect("write benchmark json");
    print!("{text}");
    m2m_core::m2m_log!(m2m_core::telemetry::Level::Info, "wrote {path}");
}

/// Median of a sample set, in place. Benchmarks report medians so a
/// single descheduled sample cannot move the committed artifact.
pub fn median_ns(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Times `f` once, returning nanoseconds.
pub fn time_ns(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_header_has_versioned_shape() {
        let report = bench_report("unit_test", "nowhere");
        let text = report.render();
        assert!(text.starts_with("{\n  \"schema_version\": 2,\n  \"benchmark\": \"unit_test\""));
        assert!(text.contains("\"deployment\": \"nowhere\""));
        assert!(text.contains("\"available_parallelism\": "));
    }

    #[test]
    fn telemetry_section_drains_only_the_instrumented_closure() {
        let section = telemetry_section(|| {
            m2m_core::telemetry::counter("bench.report.test", 3);
        });
        let text = section.render();
        assert!(text.contains("\"bench.report.test\": 3"), "got {text}");
        // The registry was drained and tracing disabled on the way out.
        assert!(!m2m_core::telemetry::enabled());
        assert_eq!(
            m2m_core::telemetry::snapshot().counter("bench.report.test"),
            0
        );
    }

    #[test]
    fn cli_parses_flags_and_positionals() {
        let argv = |list: &[&str]| list.iter().map(|s| (*s).to_string()).collect();
        let cli = BenchCli::parse_from(argv(&["--smoke", "out.json", "9"]), "D.json");
        assert!(cli.smoke);
        assert_eq!(cli.check, None);
        assert_eq!(cli.out_path, "out.json");
        assert_eq!(cli.count, Some(9));

        let cli = BenchCli::parse_from(argv(&["--nodes", "50,100"]), "D.json");
        assert_eq!(cli.nodes, vec![50, 100]);
        assert_eq!(cli.out_path, "D.json");
        assert_eq!(cli.count, None);

        let cli = BenchCli::parse_from(argv(&["--nodes=250", "--check", "a.json"]), "D.json");
        assert_eq!(cli.nodes, vec![250]);
        assert_eq!(cli.check.as_deref(), Some("a.json"));

        // `--check` with no value defaults to the binary's artifact.
        let cli = BenchCli::parse_from(argv(&["--check", "--smoke"]), "D.json");
        assert_eq!(cli.check.as_deref(), Some("D.json"));
        assert!(cli.smoke);
    }

    #[test]
    fn env_section_captures_only_m2m_knobs() {
        // Avoid mutating the process environment (other tests read it):
        // assert on shape only — every captured key has the prefix.
        let section = env_section();
        let text = section.render();
        for line in text.lines().filter(|l| l.contains(':')) {
            let key = line.trim().trim_start_matches('"');
            if let Some(end) = key.find('"') {
                assert!(
                    key[..end].starts_with("M2M_"),
                    "non-M2M key captured: {line}"
                );
            }
        }
    }

    #[test]
    fn check_header_round_trips_a_fresh_report() {
        let dir = std::env::temp_dir().join("m2m_report_check_header_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_unit.json");
        let path = path.to_str().expect("utf-8 temp path");
        std::fs::write(path, bench_report("unit_check", "nowhere").render()).expect("write");
        let doc = check_header(path, "unit_check");
        assert_eq!(
            doc.get("deployment").and_then(JsonValue::as_str),
            Some("nowhere")
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut a = [3.0, 1.0, 2.0];
        let mut b = [2.0, 3.0, 1.0];
        assert_eq!(median_ns(&mut a), 2.0);
        assert_eq!(median_ns(&mut b), 2.0);
    }
}
