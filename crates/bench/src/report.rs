//! Shared emission for the committed `BENCH_*.json` artifacts.
//!
//! Both benchmark binaries (`bench_optimizer`, `bench_runtime`) used to
//! hand-format their JSON with `format!` strings, which drifted apart
//! field by field. They now build a [`JsonValue`] tree through this
//! module: one schema version, one header shape, one writer. The schema
//! is versioned so additive sections (like the `"telemetry"` counters
//! introduced in version 2) never silently change the meaning of an
//! artifact a downstream diff is watching.

use std::time::Instant;

pub use m2m_core::telemetry::json::JsonValue;

/// Schema version stamped into every benchmark artifact.
///
/// * v1 (implicit): the hand-formatted artifacts, no version field.
/// * v2: adds `schema_version` itself plus the additive `telemetry`
///   section holding a counter/histogram snapshot from an instrumented
///   run. Existing fields keep their v1 names and meanings.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Starts a benchmark report with the header fields every artifact
/// shares: schema version, benchmark name, deployment label, and the
/// machine's available parallelism.
pub fn bench_report(benchmark: &str, deployment: &str) -> JsonValue {
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    JsonValue::object()
        .with("schema_version", BENCH_SCHEMA_VERSION)
        .with("benchmark", benchmark)
        .with("deployment", deployment)
        .with("available_parallelism", parallelism)
}

/// Runs `instrumented` with tracing forced on, then returns the counter
/// snapshot as the report's additive `"telemetry"` section.
///
/// When the process started with tracing off (the default), the registry
/// is cleared before and after so the section covers exactly the closure
/// and the timed phases of the benchmark never pay more than the
/// relaxed-load check. When the operator already enabled tracing via
/// `M2M_TRACE=1`, the flag and accumulated counters are left alone so a
/// trailing `export_if_requested` still sees the whole run.
pub fn telemetry_section(instrumented: impl FnOnce()) -> JsonValue {
    let was_enabled = m2m_core::telemetry::enabled();
    if !was_enabled {
        m2m_core::telemetry::reset();
        m2m_core::telemetry::set_enabled(true);
    }
    instrumented();
    let section = m2m_core::telemetry::snapshot().to_json();
    if !was_enabled {
        m2m_core::telemetry::set_enabled(false);
        m2m_core::telemetry::reset();
    }
    section
}

/// Renders a report, writes it to `path`, and echoes it to stdout (the
/// artifacts double as the benchmark's machine-readable output).
pub fn write_report(path: &str, report: &JsonValue) {
    let text = report.render();
    std::fs::write(path, &text).expect("write benchmark json");
    print!("{text}");
    m2m_core::m2m_log!(m2m_core::telemetry::Level::Info, "wrote {path}");
}

/// Median of a sample set, in place. Benchmarks report medians so a
/// single descheduled sample cannot move the committed artifact.
pub fn median_ns(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Times `f` once, returning nanoseconds.
pub fn time_ns(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_header_has_versioned_shape() {
        let report = bench_report("unit_test", "nowhere");
        let text = report.render();
        assert!(text.starts_with("{\n  \"schema_version\": 2,\n  \"benchmark\": \"unit_test\""));
        assert!(text.contains("\"deployment\": \"nowhere\""));
        assert!(text.contains("\"available_parallelism\": "));
    }

    #[test]
    fn telemetry_section_drains_only_the_instrumented_closure() {
        let section = telemetry_section(|| {
            m2m_core::telemetry::counter("bench.report.test", 3);
        });
        let text = section.render();
        assert!(text.contains("\"bench.report.test\": 3"), "got {text}");
        // The registry was drained and tracing disabled on the way out.
        assert!(!m2m_core::telemetry::enabled());
        assert_eq!(
            m2m_core::telemetry::snapshot().counter("bench.report.test"),
            0
        );
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut a = [3.0, 1.0, 2.0];
        let mut b = [2.0, 3.0, 1.0];
        assert_eq!(median_ns(&mut a), 2.0);
        assert_eq!(median_ns(&mut b), 2.0);
    }
}
