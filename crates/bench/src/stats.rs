//! Small descriptive-statistics helpers for multi-seed experiment runs.

/// Mean / spread summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Formats as `mean ± std`.
    pub fn pm(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.std_dev)
    }
}

/// Summarizes a sample with Welford's online algorithm (numerically
/// stable for long runs).
///
/// # Panics
/// Panics on an empty sample.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty sample");
    let mut mean = 0.0;
    let mut m2 = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (i, &x) in values.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i as f64 + 1.0);
        m2 += delta * (x - mean);
        min = min.min(x);
        max = max.max(x);
    }
    let n = values.len();
    let std_dev = if n > 1 {
        (m2 / (n as f64 - 1.0)).sqrt()
    } else {
        0.0
    };
    Summary {
        mean,
        std_dev,
        min,
        max,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev - 2.1380899352993947).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn singleton_has_zero_spread() {
        let s = summarize(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = summarize(&[7.0; 100]);
        assert_eq!(s.mean, 7.0);
        assert!(s.std_dev.abs() < 1e-12);
    }

    #[test]
    fn formatting() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.pm(1), "2.0 ± 1.0");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        summarize(&[]);
    }
}
