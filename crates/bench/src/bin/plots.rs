//! Renders every paper figure as an SVG chart for visual comparison with
//! the paper's plots.
//!
//! ```text
//! cargo run --release -p m2m-bench --bin plots [output_dir]
//! ```
//!
//! Writes `fig3.svg` … `fig7.svg` into `output_dir` (default `plots/`).

use m2m_bench::figures::{
    figure3_data, figure4_data, figure5_data, figure6_data, figure7_data, FigureData,
};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "plots".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let figures: Vec<(&str, FigureData)> = vec![
        ("fig3", figure3_data()),
        ("fig4", figure4_data()),
        ("fig5", figure5_data()),
        ("fig6", figure6_data()),
        ("fig7", figure7_data()),
    ];
    for (name, data) in figures {
        let path = format!("{out_dir}/{name}.svg");
        std::fs::write(&path, data.to_chart().render()).expect("write svg");
        println!(
            "{path}: {} series x {} points",
            data.columns.len(),
            data.rows.len()
        );
    }
}
