//! Figure 3: varying the number of aggregation functions.
//!
//! 68-node Great Duck Island layout, 10–100% of nodes as destinations,
//! 20 sources per destination, dispersion d = 0.9. Series: Optimal,
//! Multicast, Aggregation, Flood; average round energy (mJ).

fn main() {
    m2m_bench::figures::figure3_data().print_csv();
}
