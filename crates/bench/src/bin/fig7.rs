//! Figure 7: suppression override policies.
//!
//! Three random 68-node networks, 30% of nodes as destinations with 25
//! sources each; per-round value-change probability swept over 0–0.3.
//! For each override policy (aggressive / medium / conservative), the
//! percent improvement in consumption over the default plan applied to
//! the same changed values, averaged over 10 timesteps per network.

fn main() {
    m2m_bench::figures::figure7_data().print_csv();
}
