//! Runs every figure harness in sequence (fig3 … fig7), separated by
//! blank lines — convenient for regenerating EXPERIMENTS.md data in one
//! command:
//!
//! ```text
//! cargo run --release -p m2m-bench --bin all_figures
//! ```

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("target dir");
    for fig in ["fig3", "fig4", "fig5", "fig6", "fig7"] {
        let path = dir.join(fig);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {fig} ({path:?}): {e}"));
        assert!(status.success(), "{fig} exited with {status}");
        println!();
    }
}
