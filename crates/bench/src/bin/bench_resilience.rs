//! Machine-readable fault-tolerance benchmark.
//!
//! Exercises the loss-aware executor ([`m2m_core::faults::FaultyExec`])
//! over the three delivery models it supports — a uniform Bernoulli
//! sweep, per-link losses derived from distance-based ETX quality, and an
//! injected [`FailureTrace`] outage — and writes coverage, retransmission,
//! drop, and energy statistics to `BENCH_resilience.json`. Before timing
//! anything it proves the lossy path is the compiled path plus loss
//! (p = 0 must be bit-identical to [`CompiledSchedule::run_round_on`])
//! and that batched lossy rounds are thread-count invariant: the digest
//! printed per scenario folds every result, coverage set, and cost, so
//! two runs — or the same run at 1, 2, and 8 workers — agree on the
//! digest iff they computed bit-identical outcomes.
//!
//! Usage: `cargo run --release -p m2m-bench --bin bench_resilience \
//!         [--smoke] [--check <artifact.json>] [output.json] [rounds]`
//!
//! `--smoke` runs a reduced batch and exits non-zero on any equivalence
//! or determinism violation — the regression gate wired into
//! `scripts/verify.sh`. `--check` parses an existing artifact and
//! asserts the schema it gates on (version 2 with a `scenarios` array),
//! so the committed JSON can never drift unparseable.

use std::collections::BTreeMap;

use m2m_bench::report::{bench_report, median_ns, time_ns, JsonValue};
use m2m_core::exec::{CompiledSchedule, ExecState};
use m2m_core::faults::{FaultOutcome, FaultyExec, RetryPolicy, SALT_STRIDE};
use m2m_core::plan::GlobalPlan;
use m2m_core::telemetry::Level;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_core::{m2m_log, telemetry};
use m2m_graph::NodeId;
use m2m_netsim::failure::{DeliveryModel, FailureTrace};
use m2m_netsim::quality::LinkQuality;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const BASE_SALT: u64 = 0xbe9c_ff5a;

/// Deterministic synthetic reading for `(source, round)` — no RNG so the
/// artifact is reproducible byte-for-byte across runs and machines.
fn reading(source: NodeId, round: usize) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    (s * 0.41 + r * 1.07).sin() * 50.0 + s * 0.01
}

/// FNV-1a over every field of every outcome: results (presence and
/// bits), coverage sets, cost, slots, retransmissions, drops.
fn digest_outcomes(outcomes: &[FaultOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for out in outcomes {
        for r in &out.results {
            match r {
                Some(v) => fold(v.to_bits()),
                None => fold(u64::MAX),
            }
        }
        for c in &out.coverage {
            fold(u64::from(c.destination.0));
            fold(c.covered as u64);
            fold(c.demanded as u64);
            for &m in &c.missing {
                fold(u64::from(m.0));
            }
        }
        fold(out.cost.tx_uj.to_bits());
        fold(out.cost.rx_uj.to_bits());
        fold(out.cost.messages as u64);
        fold(out.cost.units as u64);
        fold(out.cost.payload_bytes);
        fold(u64::from(out.slots_used));
        fold(out.retransmissions as u64);
        fold(out.dropped_messages as u64);
        fold(u64::from(out.delivered));
    }
    h
}

/// Runs one scenario batch, asserts thread-count invariance, and returns
/// the aggregate row for the artifact plus the digest.
fn scenario_row(
    name: &str,
    faulty: &FaultyExec,
    batch: &[Vec<f64>],
    model: &DeliveryModel,
    policy: &RetryPolicy,
    samples: usize,
) -> (JsonValue, u64) {
    let serial = faulty.run_rounds(batch, model, policy, BASE_SALT, 1);
    for &threads in &THREAD_COUNTS[1..] {
        let parallel = faulty.run_rounds(batch, model, policy, BASE_SALT, threads);
        assert_eq!(parallel, serial, "{name}: divergence at {threads} threads");
    }
    let digest = digest_outcomes(&serial);

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        times.push(
            time_ns(|| {
                let replay = faulty.run_rounds(batch, model, policy, BASE_SALT, 2);
                assert_eq!(digest_outcomes(&replay), digest, "{name}: replay diverged");
            }) / batch.len() as f64,
        );
    }
    let med = median_ns(&mut times);

    let rounds = serial.len() as f64;
    let delivered = serial.iter().filter(|o| o.delivered).count() as f64 / rounds;
    let coverage: f64 = serial
        .iter()
        .flat_map(|o| o.coverage.iter())
        .map(m2m_core::faults::DestCoverage::fraction)
        .sum::<f64>()
        / serial
            .iter()
            .map(|o| o.coverage.len())
            .sum::<usize>()
            .max(1) as f64;
    let retx: usize = serial.iter().map(|o| o.retransmissions).sum();
    let dropped: usize = serial.iter().map(|o| o.dropped_messages).sum();
    let energy_mj: f64 = serial.iter().map(|o| o.cost.total_mj()).sum::<f64>() / rounds;
    let slots: f64 = serial.iter().map(|o| f64::from(o.slots_used)).sum::<f64>() / rounds;

    m2m_log!(
        Level::Info,
        "{name}: delivered {delivered:.2}, coverage {coverage:.3}, {retx} retx, \
         {dropped} dropped, {energy_mj:.2} mJ/round, digest 0x{digest:016x}"
    );
    let row = JsonValue::object()
        .with("scenario", name)
        .with("rounds", serial.len())
        .with("delivered_fraction", JsonValue::float(delivered, 4))
        .with("mean_coverage", JsonValue::float(coverage, 6))
        .with("retransmissions", retx)
        .with("dropped_messages", dropped)
        .with("mean_energy_mj_per_round", JsonValue::float(energy_mj, 4))
        .with("mean_slots_per_round", JsonValue::float(slots, 2))
        .with("median_ns_per_round", JsonValue::float(med, 0))
        .with("digest", format!("0x{digest:016x}"));
    (row, digest)
}

/// `--check`: parse an artifact and assert the schema the gate relies on.
fn check_artifact(path: &str) {
    let value = m2m_bench::report::check_header(path, "resilience");
    let scenarios = match value.get("scenarios") {
        Some(JsonValue::Array(rows)) if !rows.is_empty() => rows,
        _ => panic!("{path}: missing or empty scenarios array"),
    };
    for row in scenarios {
        for field in ["scenario", "delivered_fraction", "mean_coverage", "digest"] {
            assert!(
                row.get(field).is_some(),
                "{path}: scenario row missing {field}"
            );
        }
    }
    println!("check_ok={path} scenarios={}", scenarios.len());
}

fn main() {
    telemetry::init_logging(Level::Info);
    let cli = m2m_bench::report::BenchCli::parse("BENCH_resilience.json");
    let smoke = cli.smoke;
    if let Some(path) = &cli.check {
        check_artifact(path);
        return;
    }
    let out_path = cli.out_path;
    let rounds: usize = cli.count.unwrap_or(if smoke { 16 } else { 64 });
    let samples = if smoke { 3 } else { 7 };

    let network = Network::with_default_energy(Deployment::great_duck_island(7));
    let n = network.node_count();
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(12, 10, 7));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);
    let compiled = CompiledSchedule::compile(&network, &spec, &plan).expect("schedulable plan");
    let faulty = FaultyExec::new(&network, &compiled);
    let policy = RetryPolicy::bounded(4, 1, 10_000);

    m2m_log!(
        Level::Info,
        "deployment: {n} nodes, {} destinations, {} sources, {} messages/round",
        spec.destinations().count(),
        compiled.sources().len(),
        compiled.schedule().messages.len(),
    );

    // Equivalence first: at p = 0 every retry policy must reproduce the
    // plain compiled round bit for bit, or no lossy number means anything.
    let probe: BTreeMap<NodeId, f64> = compiled
        .sources()
        .ids()
        .iter()
        .map(|&s| (s, reading(s, 0)))
        .collect();
    let mut state = ExecState::for_schedule(&compiled);
    let plain_cost = compiled.run_round_on(&probe, &mut state);
    let exact: Vec<Option<f64>> = state.results().iter().map(|&r| Some(r)).collect();
    let mut scratch = faulty.scratch();
    let out = faulty.run_on(
        &probe,
        &DeliveryModel::reliable(),
        &policy,
        BASE_SALT,
        &mut scratch,
    );
    assert_eq!(
        out.results, exact,
        "p=0 results diverged from compiled path"
    );
    assert_eq!(out.cost, plain_cost, "p=0 cost diverged from compiled path");
    assert_eq!(out.retransmissions, 0);
    m2m_log!(Level::Info, "p=0 equivalence: lossy path == compiled path");

    let batch: Vec<Vec<f64>> = (0..rounds)
        .map(|round| {
            compiled
                .sources()
                .ids()
                .iter()
                .map(|&s| reading(s, round))
                .collect()
        })
        .collect();

    let mut scenario_rows = Vec::new();
    let mut digests = Vec::new();

    // Uniform Bernoulli sweep.
    for p in [0.0, 0.1, 0.2, 0.3] {
        let model = DeliveryModel::uniform(p, 11);
        let (row, digest) = scenario_row(
            &format!("bernoulli_p{p:.1}"),
            &faulty,
            &batch,
            &model,
            &policy,
            samples,
        );
        scenario_rows.push(row);
        digests.push(digest);
    }

    // Per-link losses derived from distance-based ETX quality.
    let quality = LinkQuality::distance_based(&network, 0.3, 7);
    let model = DeliveryModel::from_quality(&quality, 13);
    let (row, digest) = scenario_row("etx_per_link", &faulty, &batch, &model, &policy, samples);
    scenario_rows.push(row);
    digests.push(digest);

    // Injected outage: the first scheduled message's link is down for
    // every tick (trace windows live in the salted tick space the
    // executor draws from, so a persistent window is the reproducible
    // scenario), exercising drop and coverage accounting.
    let outage = compiled.schedule().messages[0].edge;
    let trace = FailureTrace::new().down(outage.0, outage.1, 0, u64::MAX);
    let model = DeliveryModel::trace(trace);
    let (row, digest) = scenario_row("trace_outage", &faulty, &batch, &model, &policy, samples);
    scenario_rows.push(row);
    digests.push(digest);

    if smoke {
        // Machine-readable lines for scripts/verify.sh: one digest per
        // scenario, stable across reruns and thread counts.
        for (row, digest) in scenario_rows.iter().zip(&digests) {
            let name = row
                .get("scenario")
                .and_then(JsonValue::as_str)
                .expect("scenario rows are named");
            println!("smoke_digest_{name}=0x{digest:016x}");
        }
        m2m_log!(
            Level::Info,
            "smoke: {} scenarios, all thread-count invariant — OK",
            scenario_rows.len()
        );
        return;
    }

    let report = bench_report("resilience", "great_duck_island_77n")
        .with("nodes", n)
        .with("destinations", spec.destinations().count())
        .with("sources", compiled.sources().len())
        .with("messages_per_round", compiled.schedule().messages.len())
        .with("rounds", rounds)
        .with("samples", samples)
        .with("base_salt", BASE_SALT)
        .with("salt_stride", SALT_STRIDE)
        .with(
            "retry_policy",
            JsonValue::object()
                .with("max_attempts", policy.max_attempts)
                .with("backoff_slots", policy.backoff_slots)
                .with("max_slots", policy.max_slots),
        )
        .with("thread_counts_verified", {
            JsonValue::Array(THREAD_COUNTS.iter().map(|&t| JsonValue::from(t)).collect())
        })
        .with("scenarios", JsonValue::Array(scenario_rows));
    m2m_bench::report::write_report(&out_path, &report);
    if let Some(path) = telemetry::export_if_requested() {
        m2m_log!(Level::Info, "exported telemetry snapshot to {path}");
    }
}
