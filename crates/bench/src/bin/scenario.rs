//! Scenario runner: evaluate any workload shape from the command line.
//!
//! ```text
//! cargo run --release -p m2m-bench --bin scenario -- \
//!     --nodes 100 --destinations 20 --sources 15 --dispersion 0.9 \
//!     --seed 7 --routing spt
//! ```
//!
//! Prints, for each algorithm, the round energy, message/unit counts, the
//! plan summary, the slot-schedule makespan, and the lifetime projection —
//! everything a deployment planner would want before committing to a
//! workload.

use m2m_core::baselines::{flood_round_cost, plan_for_algorithm, Algorithm};
use m2m_core::metrics::{project_lifetime, NodeEnergyLedger};
use m2m_core::schedule::build_schedule;
use m2m_core::slots::assign_slots;
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

#[derive(Debug)]
struct Args {
    nodes: usize,
    destinations: usize,
    sources: usize,
    dispersion: f64,
    max_hops: u32,
    seed: u64,
    routing: RoutingMode,
    /// Write the generated deployment + workload to this file.
    save: Option<String>,
    /// Load deployment + workload from this file instead of generating.
    load: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            nodes: 68,
            destinations: 14,
            sources: 20,
            dispersion: 0.9,
            max_hops: 4,
            seed: 1,
            routing: RoutingMode::ShortestPathTrees,
            save: None,
            load: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--nodes" => args.nodes = value()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--destinations" => {
                args.destinations = value()?
                    .parse()
                    .map_err(|e| format!("--destinations: {e}"))?
            }
            "--sources" => {
                args.sources = value()?.parse().map_err(|e| format!("--sources: {e}"))?
            }
            "--dispersion" => {
                args.dispersion = value()?.parse().map_err(|e| format!("--dispersion: {e}"))?
            }
            "--max-hops" => {
                args.max_hops = value()?.parse().map_err(|e| format!("--max-hops: {e}"))?
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--routing" => {
                args.routing = match value()?.as_str() {
                    "spt" => RoutingMode::ShortestPathTrees,
                    "shared" => RoutingMode::SharedSpanningTree,
                    "steiner" => RoutingMode::SteinerTrees,
                    other => {
                        return Err(format!("--routing must be spt|shared|steiner, got {other}"))
                    }
                }
            }
            "--save" => args.save = Some(value()?),
            "--load" => args.load = Some(value()?),
            "--help" | "-h" => {
                println!(
                    "usage: scenario [--nodes N] [--destinations N] [--sources N] \
                     [--dispersion F] [--max-hops N] [--seed N] \
                     [--routing spt|shared|steiner] [--save FILE] [--load FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    m2m_core::telemetry::init_logging(m2m_core::telemetry::Level::Info);
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            m2m_core::m2m_log!(m2m_core::telemetry::Level::Error, "error: {e}");
            std::process::exit(2);
        }
    };

    // Load a saved scenario, or generate one (scaling the area with the
    // node count at GDI density).
    let (network, spec) = if let Some(path) = &args.load {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let (deployment, spec) = m2m_core::textio::from_text(&text)
            .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        (Network::with_default_energy(deployment), spec)
    } else {
        let network = if args.nodes == 68 {
            Network::with_default_energy(Deployment::great_duck_island(args.seed))
        } else {
            let series = Deployment::scaled_series(&[args.nodes], args.seed);
            Network::with_default_energy(series.into_iter().next().expect("one deployment"))
        };
        let cfg = WorkloadConfig {
            destination_count: args.destinations,
            sources_per_destination: args.sources,
            selection: SourceSelection::Dispersion {
                dispersion: args.dispersion,
                max_hops: args.max_hops,
            },
            kind: m2m_core::agg::AggregateKind::WeightedAverage,
            seed: args.seed,
        };
        let spec = generate_workload(&network, &cfg);
        (network, spec)
    };
    if let Some(path) = &args.save {
        let text = m2m_core::textio::to_text(network.deployment(), &spec);
        std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("scenario saved to {path}");
    }
    let routing = RoutingTables::build(&network, &spec.source_to_destinations(), args.routing);

    println!(
        "network: {} nodes, {} links | workload: {} destinations, {} (source, destination) pairs",
        network.node_count(),
        network.graph().edge_count(),
        spec.destination_count(),
        spec.pair_count()
    );
    println!();
    println!("algorithm    energy(mJ)  messages  units  slots  lifetime(rounds)");
    let battery_uj = 2.0 * 3600.0 * 3.0 * 1e6;
    for alg in Algorithm::PLANNED {
        let plan = plan_for_algorithm(&network, &spec, &routing, alg);
        let schedule = build_schedule(&spec, &plan).expect("schedulable");
        let mut ledger = NodeEnergyLedger::new(network.node_count());
        let cost = schedule.charge_round(network.energy(), &mut ledger);
        let slots = assign_slots(&network, &schedule);
        let life = project_lifetime(&ledger, battery_uj);
        println!(
            "{:<12} {:>10.1} {:>9} {:>6} {:>6} {:>17.0}",
            alg.name(),
            cost.total_mj(),
            cost.messages,
            cost.units,
            slots.slot_count,
            life.rounds_until_first_death
        );
        if alg == Algorithm::Optimal {
            println!("             plan: {}", plan.summary());
        }
    }
    let flood = flood_round_cost(&network, &spec);
    println!(
        "{:<12} {:>10.1} {:>9} {:>6}",
        "Flood",
        flood.total_mj(),
        flood.messages,
        flood.units
    );
}
