//! Flight-recorder renderer and observability regression gate.
//!
//! Runs a 250-node lossy session with the observability layer enabled
//! ([`M2M_OBS`]-equivalent, forced on in-process), then renders what the
//! flight recorder captured: a per-node hotspot table (energy, messages,
//! retries, drops, battery estimate), a round-by-round coverage/energy
//! timeline, and a versioned JSON artifact (`BENCH_obs.json`). Before
//! rendering anything it proves the books balance: the per-node planes,
//! the recorder's running totals, the global telemetry counters, and the
//! per-round outcomes must agree *exactly* on retransmissions, drops,
//! and round counts (energy reconciles within float-summation
//! tolerance, since planes sum per node while outcomes sum per message).
//!
//! It also measures what observability costs: the same batch is timed
//! through a session with the layer off and one with it on, outcome
//! digests are required to be bit-identical (observability must never
//! change results), and the rounds/sec ratio is reported — the
//! `scripts/verify.sh` gate holds the enabled path under a 5% budget.
//!
//! Usage: `cargo run --release -p m2m-bench --bin m2m_obs -- \
//!         [--smoke] [--check [artifact.json]] [--nodes N] \
//!         [output.json] [rounds] [trace.json]`
//!
//! `--smoke` runs a reduced batch and prints the machine-readable
//! `smoke_obs_*` lines verify.sh gates on. `--check` validates an
//! existing artifact's schema. The optional third positional writes the
//! stage spans (route → intern → problems → solve → compile) as Chrome
//! `trace_event` JSON loadable in Perfetto or speedscope.
//!
//! [`M2M_OBS`]: m2m_core::config::OBS_ENV

use m2m_bench::report::{bench_report, check_header, median_ns, time_ns, BenchCli, JsonValue};
use m2m_core::config::{Config, Runtime};
use m2m_core::faults::FaultOutcome;
use m2m_core::obs::DEFAULT_BATTERY_UJ;
use m2m_core::session::Session;
use m2m_core::telemetry::timeseries;
use m2m_core::telemetry::{names, Level};
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_core::{m2m_log, telemetry};
use m2m_graph::NodeId;
use m2m_netsim::failure::DeliveryModel;
use m2m_netsim::{Deployment, Network, RoutingMode};

const BASE_SALT: u64 = 0x0b5e_7a11;
/// Loss probability for the showcase session.
const LOSS_P: f64 = 0.15;
/// Enabled-path budget: obs on may cost at most this fraction of
/// rounds/sec (mirrored by the verify.sh gate's `M2M_OBS_TOL`).
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Deterministic synthetic reading for `(source, round)` — no RNG so
/// runs are reproducible byte-for-byte.
fn reading(source: NodeId, round: usize) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    (s * 0.53 + r * 0.97).sin() * 40.0 + s * 0.01
}

/// FNV-1a over every field of every outcome (results, coverage, cost,
/// slots, retries, drops) — equal digests iff bit-identical outcomes.
fn digest_outcomes(outcomes: &[FaultOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for out in outcomes {
        for r in &out.results {
            match r {
                Some(v) => fold(v.to_bits()),
                None => fold(u64::MAX),
            }
        }
        for c in &out.coverage {
            fold(u64::from(c.destination.0));
            fold(c.covered as u64);
            fold(c.demanded as u64);
            for &m in &c.missing {
                fold(u64::from(m.0));
            }
        }
        fold(out.cost.tx_uj.to_bits());
        fold(out.cost.rx_uj.to_bits());
        fold(u64::from(out.slots_used));
        fold(out.retransmissions as u64);
        fold(out.dropped_messages as u64);
    }
    h
}

fn build_session(network: &Network, obs: bool, cap: usize) -> Session {
    let n = network.node_count();
    let spec = generate_workload(network, &WorkloadConfig::paper_default(n / 4, 20, 7));
    let config = Config::builder().trace(true).obs(obs).obs_cap(cap).build();
    Session::builder(network.clone(), spec)
        .routing_mode(RoutingMode::ShortestPathTrees)
        .config(config)
        .runtime(Runtime::Lossy)
        .delivery(DeliveryModel::uniform(LOSS_P, 11))
        .base_salt(BASE_SALT)
        .build()
}

/// Runs a batch through the unified [`Session::run_rounds`] dispatcher
/// and unwraps the lossy-runtime outcomes the digests and books consume.
fn lossy_batch(session: &mut Session, batch: &[Vec<f64>]) -> Vec<FaultOutcome> {
    session
        .run_rounds(batch)
        .into_iter()
        .map(|r| r.fault().expect("lossy runtime").clone())
        .collect()
}

/// Exact-integer and tolerant-float reconciliation of the three books:
/// planes (where), recorder totals (when), global counters + summed
/// outcomes (how much). Panics on any imbalance.
fn reconcile(session: &Session, outcomes: &[FaultOutcome]) {
    let planes = timeseries::planes_snapshot();
    let totals = *session.recorder().expect("obs session").totals();
    let snap = telemetry::snapshot();

    let sum_retx: u64 = outcomes.iter().map(|o| o.retransmissions as u64).sum();
    let sum_drop: u64 = outcomes.iter().map(|o| o.dropped_messages as u64).sum();
    let sum_tx: f64 = outcomes.iter().map(|o| o.cost.tx_uj).sum();
    let sum_rx: f64 = outcomes.iter().map(|o| o.cost.rx_uj).sum();

    let plane_retx: u64 = planes.retries().iter().sum();
    let plane_drop: u64 = planes.drops().iter().sum();
    let plane_tx: f64 = planes.energy_tx_uj().iter().sum();
    let plane_rx: f64 = planes.energy_rx_uj().iter().sum();

    // Integer books must balance exactly.
    assert_eq!(plane_retx, sum_retx, "plane retries != summed outcomes");
    assert_eq!(plane_drop, sum_drop, "plane drops != summed outcomes");
    assert_eq!(
        plane_retx,
        snap.counter(names::FAULTS_RETRANSMISSIONS),
        "plane retries != global counter"
    );
    assert_eq!(
        plane_drop,
        snap.counter(names::FAULTS_DROPPED_MESSAGES),
        "plane drops != global counter"
    );
    assert_eq!(totals.retransmissions, sum_retx, "recorder retx drifted");
    assert_eq!(totals.dropped, sum_drop, "recorder drops drifted");
    assert_eq!(totals.rounds, outcomes.len() as u64, "recorder rounds");
    assert_eq!(planes.rounds(), outcomes.len() as u64, "plane rounds");
    assert_eq!(
        planes.rounds(),
        snap.counter(names::FAULTS_ROUNDS),
        "plane rounds != global counter"
    );

    // Energy books sum the same µJ in different orders (per node vs per
    // message), so they agree to float tolerance, not bit-exactly.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(close(plane_tx, sum_tx), "plane tx {plane_tx} vs {sum_tx}");
    assert!(close(plane_rx, sum_rx), "plane rx {plane_rx} vs {sum_rx}");
    assert!(close(totals.tx_uj, sum_tx), "recorder tx energy drifted");
    assert!(close(totals.rx_uj, sum_rx), "recorder rx energy drifted");
}

/// Renders the per-node hotspot table (top `limit` nodes by energy).
fn print_hotspots(limit: usize) {
    let planes = timeseries::planes_snapshot();
    let mut order: Vec<usize> = (0..planes.len()).collect();
    order.sort_by(|&a, &b| planes.energy_uj(b).total_cmp(&planes.energy_uj(a)));
    println!(
        "hotspots (top {limit} of {} nodes by energy):",
        planes.len()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>8} {:>8} {:>6} {:>9}",
        "node", "tx_uj", "rx_uj", "msgs_tx", "msgs_rx", "retries", "drops", "battery%"
    );
    for &slot in order.iter().take(limit) {
        let battery_pct = planes.battery_uj(slot, DEFAULT_BATTERY_UJ) / DEFAULT_BATTERY_UJ * 100.0;
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>8} {:>8} {:>8} {:>6} {:>9.5}",
            planes.ids()[slot],
            planes.energy_tx_uj()[slot],
            planes.energy_rx_uj()[slot],
            planes.msgs_tx()[slot],
            planes.msgs_rx()[slot],
            planes.retries()[slot],
            planes.drops()[slot],
            battery_pct,
        );
    }
}

/// Renders the per-round coverage/energy timeline (at most `limit`
/// evenly spaced points).
fn print_timeline(session: &Session, limit: usize) {
    let rec = session.recorder().expect("obs session");
    let points: Vec<_> = rec.series().collect();
    let step = points.len().div_ceil(limit).max(1);
    println!(
        "timeline ({} points, stride {}, {} evicted):",
        points.len(),
        rec.every(),
        rec.series_evicted()
    );
    println!(
        "{:>6} {:>9} {:>9} {:>12} {:>6} {:>6} {:>6}",
        "round", "coverage", "degraded", "energy_uj", "retx", "drops", "slots"
    );
    for p in points.iter().step_by(step) {
        println!(
            "{:>6} {:>9.4} {:>9} {:>12.1} {:>6} {:>6} {:>6}",
            p.round,
            p.coverage(),
            p.degraded,
            p.tx_uj + p.rx_uj,
            p.retransmissions,
            p.dropped,
            p.slots_used,
        );
    }
}

/// `--check`: parse an artifact and assert the schema the gate relies
/// on, including the committed overhead staying under the budget.
fn check_artifact(path: &str) {
    let value = check_header(path, "obs");
    let obs = value
        .get("obs")
        .unwrap_or_else(|| panic!("{path}: missing obs section"));
    let schema = obs
        .get("m2m_obs_schema")
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("{path}: obs dump missing m2m_obs_schema"));
    assert_eq!(
        schema,
        timeseries::OBS_SCHEMA_VERSION,
        "{path}: unexpected obs schema {schema}"
    );
    for field in [
        "stride",
        "cap",
        "totals",
        "series",
        "events",
        "plane_rounds",
        "nodes",
    ] {
        assert!(obs.get(field).is_some(), "{path}: obs dump missing {field}");
    }
    let nodes = match obs.get("nodes") {
        Some(JsonValue::Array(rows)) if !rows.is_empty() => rows,
        _ => panic!("{path}: obs dump has no per-node planes"),
    };
    for field in ["node", "energy_tx_uj", "retries", "drops", "battery_uj"] {
        assert!(
            nodes[0].get(field).is_some(),
            "{path}: node row missing {field}"
        );
    }
    let rounds = obs
        .get("totals")
        .and_then(|t| t.get("rounds"))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("{path}: obs totals missing rounds"));
    assert!(rounds > 0, "{path}: artifact recorded no rounds");
    let overhead = value
        .get("overhead")
        .and_then(|o| o.get("overhead_pct"))
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("{path}: missing overhead.overhead_pct"));
    assert!(
        overhead < OVERHEAD_BUDGET_PCT,
        "{path}: committed overhead {overhead:.2}% breaches the {OVERHEAD_BUDGET_PCT}% budget"
    );
    assert_eq!(
        value.get("reconcile").and_then(JsonValue::as_str),
        Some("exact"),
        "{path}: artifact was not reconciled"
    );
    println!("check_ok={path} nodes={} rounds={rounds}", nodes.len());
}

fn main() {
    telemetry::init_logging(Level::Info);
    let cli = BenchCli::parse("BENCH_obs.json");
    if let Some(path) = &cli.check {
        check_artifact(path);
        return;
    }
    let node_count = cli.nodes.first().copied().unwrap_or(250);
    let rounds = cli.count.unwrap_or(if cli.smoke { 24 } else { 96 });
    let samples = if cli.smoke { 5 } else { 7 };
    let trace_path = cli.rest.first().cloned();

    let deployment = Deployment::scaled_series(&[node_count], 7).remove(0);
    let network = Network::with_default_energy(deployment);

    // Two sessions for the overhead race (identical salts, batches, and
    // loss stream; only the observability layer differs), plus a fresh
    // one for the reconciled showcase run.
    let mut off = build_session(&network, false, 4096);
    let mut on = build_session(&network, true, 4096);
    let sources = on.compiled().sources().ids().to_vec();
    let batch: Vec<Vec<f64>> = (0..rounds)
        .map(|round| sources.iter().map(|&s| reading(s, round)).collect())
        .collect();
    m2m_log!(
        Level::Info,
        "deployment: {} nodes, {} sources, {} messages/round, p={LOSS_P}",
        network.node_count(),
        sources.len(),
        on.compiled().schedule().messages.len(),
    );

    // Overhead race: per sample, run the batch with the layer off and
    // on; both sessions advance their salt streams in lockstep, so the
    // outcome digests must match bit for bit. One untimed warmup batch
    // per session first — cold caches and pool spin-up otherwise land
    // entirely on the first timed sample.
    timeseries::set_obs_enabled(false);
    lossy_batch(&mut off, &batch);
    timeseries::set_obs_enabled(true);
    lossy_batch(&mut on, &batch);
    let mut on_ns = Vec::with_capacity(samples);
    let mut off_ns = Vec::with_capacity(samples);
    let mut digest_on = 0u64;
    let mut digest_off = 0u64;
    for _ in 0..samples {
        timeseries::set_obs_enabled(false);
        off_ns.push(time_ns(|| {
            digest_off = digest_outcomes(&lossy_batch(&mut off, &batch));
        }));
        timeseries::set_obs_enabled(true);
        on_ns.push(time_ns(|| {
            digest_on = digest_outcomes(&lossy_batch(&mut on, &batch));
        }));
        assert_eq!(digest_on, digest_off, "observability changed the outcomes");
    }
    let per_round_on = median_ns(&mut on_ns) / rounds as f64;
    let per_round_off = median_ns(&mut off_ns) / rounds as f64;
    let rps_on = 1e9 / per_round_on;
    let rps_off = 1e9 / per_round_off;
    let overhead_pct = (per_round_on / per_round_off - 1.0) * 100.0;

    // Reconciled showcase run: fresh session, fresh books. The ring cap
    // bounds the committed artifact's size; totals stay exact across
    // eviction, so reconciliation is cap-independent.
    let mut session = build_session(&network, true, 512);
    timeseries::set_obs_enabled(true);
    telemetry::set_enabled(true);
    telemetry::reset();
    timeseries::reset_planes();
    let outcomes = lossy_batch(&mut session, &batch);
    reconcile(&session, &outcomes);
    m2m_log!(Level::Info, "reconcile: planes == recorder == counters");

    print_hotspots(10);
    print_timeline(&session, 12);

    // Machine-readable lines for scripts/verify.sh.
    println!("smoke_obs_rps_on={rps_on:.1}");
    println!("smoke_obs_rps_off={rps_off:.1}");
    println!("smoke_obs_overhead_pct={overhead_pct:.3}");
    println!("smoke_obs_digest_on=0x{digest_on:016x}");
    println!("smoke_obs_digest_off=0x{digest_off:016x}");
    println!("smoke_obs_reconcile=exact");
    if cli.smoke {
        m2m_log!(Level::Info, "smoke: obs overhead {overhead_pct:.2}% — OK");
        return;
    }

    let dump = session.obs_dump().expect("obs session dumps");
    let report = bench_report("obs", &format!("scaled_series_{node_count}"))
        .with("nodes", network.node_count())
        .with("rounds", rounds)
        .with("loss_p", JsonValue::float(LOSS_P, 2))
        .with("samples", samples)
        .with("base_salt", BASE_SALT)
        .with(
            "overhead",
            JsonValue::object()
                .with("rounds_per_sec_on", JsonValue::float(rps_on, 1))
                .with("rounds_per_sec_off", JsonValue::float(rps_off, 1))
                .with("overhead_pct", JsonValue::float(overhead_pct, 3))
                .with("budget_pct", JsonValue::float(OVERHEAD_BUDGET_PCT, 1))
                .with("digest", format!("0x{digest_on:016x}")),
        )
        .with("reconcile", "exact")
        .with("obs", dump);
    m2m_bench::report::write_report(&cli.out_path, &report);

    if let Some(path) = trace_path {
        let trace = timeseries::chrome_trace().render();
        std::fs::write(&path, &trace).expect("write chrome trace");
        m2m_log!(
            Level::Info,
            "wrote {} stage spans to {path}",
            timeseries::stage_span_count()
        );
    }
}
