//! Discrete-event simulator benchmark: lossy epochs through
//! [`m2m_core::sim::SimExec`] over a density-preserving scaled series
//! (1k/10k/100k nodes by default), plus the distributed cover solve's
//! convergence columns.
//!
//! Each size point builds the full pipeline (workload → routing → plan →
//! compiled schedule), lowers it onto the event wheel, and drives a
//! lossy epoch (uniform p = 0.1, bounded retries) through one reusable
//! [`m2m_core::sim::SimState`] — the headline column is simulator events
//! per second. Before timing anything it proves the simulator is the
//! compiled executor plus loss (p = 0 must be bit-identical to
//! [`CompiledSchedule::run_round_on`]) and that the distributed per-edge
//! cover solve ([`m2m_core::dvc`]) converged to exactly the centralized
//! plan's solutions, recording its protocol rounds and message count.
//!
//! Usage: `cargo run --release -p m2m-bench --bin bench_sim \
//!         [--smoke] [--check <artifact.json>] [--nodes N1,N2,...]
//!         [output.json] [rounds]`
//!
//! `--smoke` runs the 1k-node point and prints machine-readable lines
//! for `scripts/verify.sh`:
//!
//! * `smoke_sim_events_per_sec=` — lossy-epoch event throughput, gated
//!   against the `M2M_SIM_FLOOR` regression floor by the verify script;
//! * `smoke_sim_digest=` — FNV-1a over every outcome of the epoch,
//!   which must be identical across back-to-back runs (and is replayed
//!   in-process through a warm state before being printed).
//!
//! `--check` parses an existing artifact and asserts the schema the
//! gate relies on, including that every size recorded `dvc_agrees`.

use std::collections::BTreeMap;

use m2m_bench::report::{bench_report, time_ns, JsonValue};
use m2m_core::dvc::solve_distributed;
use m2m_core::exec::{CompiledSchedule, ExecState};
use m2m_core::faults::{RetryPolicy, SALT_STRIDE};
use m2m_core::plan::GlobalPlan;
use m2m_core::sim::{SimExec, SimOutcome};
use m2m_core::telemetry::Level;
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_core::{m2m_log, telemetry};
use m2m_graph::NodeId;
use m2m_netsim::failure::DeliveryModel;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

/// Workload seed shared by every size point (deployment and demand).
const SEED: u64 = 7;
/// Base round salt; per-round salts advance by [`SALT_STRIDE`] exactly
/// like `core::session` epochs.
const BASE_SALT: u64 = 0x51b3_e57e;
/// Uniform per-link loss probability for the timed epoch.
const LOSS_P: f64 = 0.1;

/// Destinations for an `n`-node point: enough demand to keep every
/// region of the deployment busy, pinned at 250 so the 100k point
/// isolates event-wheel scaling rather than plan-size scaling.
fn destinations_for(n: usize) -> usize {
    (n / 40).clamp(8, 250)
}

/// Lossy rounds per epoch: fewer where each round is expensive.
fn rounds_for(n: usize) -> usize {
    if n <= 2_500 {
        32
    } else if n <= 25_000 {
        8
    } else {
        4
    }
}

/// Deterministic synthetic reading for `(source, round)` — no RNG so the
/// artifact is reproducible byte-for-byte across runs and machines.
fn reading(source: NodeId, round: usize) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    (s * 0.67 + r * 1.13).sin() * 40.0 + s * 0.01
}

/// FNV-1a over every field of every simulated outcome: result bits,
/// coverage, cost, event/tick counts, queue pressure.
fn digest_outcomes(outcomes: &[SimOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for out in outcomes {
        for r in &out.outcome.results {
            match r {
                Some(v) => fold(v.to_bits()),
                None => fold(u64::MAX),
            }
        }
        for c in &out.outcome.coverage {
            fold(u64::from(c.destination.0));
            fold(c.covered as u64);
            fold(c.demanded as u64);
        }
        fold(out.outcome.cost.tx_uj.to_bits());
        fold(out.outcome.cost.rx_uj.to_bits());
        fold(out.outcome.cost.messages as u64);
        fold(out.outcome.retransmissions as u64);
        fold(out.events);
        fold(out.ticks);
        fold(u64::from(out.peak_queue_depth));
        fold(out.queue_overflows);
        for &(node, pushes) in &out.overflow_nodes {
            fold(u64::from(node.0));
            fold(u64::from(pushes));
        }
    }
    h
}

struct SizePoint {
    nodes: usize,
    destinations: usize,
    sources: usize,
    messages: usize,
    components: usize,
    rounds: usize,
    events: u64,
    events_per_sec: f64,
    delivered: f64,
    retransmissions: usize,
    peak_queue_depth: u32,
    queue_overflows: u64,
    digest: u64,
    dvc_rounds: u64,
    dvc_messages: u64,
    dvc_patches: usize,
    dvc_agrees: bool,
}

fn run_size(n: usize, rounds: usize) -> SizePoint {
    let deployment = Deployment::scaled_series(&[n], SEED).remove(0);
    let network = Network::with_default_energy(deployment);
    let dests = destinations_for(n);
    let cfg = WorkloadConfig {
        selection: SourceSelection::Uniform,
        ..WorkloadConfig::paper_default(dests, 20, SEED)
    };
    let spec = generate_workload(&network, &cfg);
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);
    let compiled = CompiledSchedule::compile(&network, &spec, &plan).expect("schedulable plan");
    let sim = SimExec::new(&network, &compiled);
    m2m_log!(
        Level::Info,
        "n={n}: {dests} destinations, {} sources, {} messages/round, {} components",
        compiled.sources().len(),
        sim.message_count(),
        sim.component_count()
    );

    // The simulator is the compiled executor plus loss: at p = 0 the
    // per-destination results must agree to the bit.
    let sources = compiled.sources().ids().to_vec();
    let readings_map: BTreeMap<NodeId, f64> = sources.iter().map(|&s| (s, reading(s, 0))).collect();
    let mut exec_state = ExecState::for_schedule(&compiled);
    compiled.run_round_on(&readings_map, &mut exec_state);
    let mut st = sim.state();
    let lossless = sim.run_on(
        &readings_map,
        &DeliveryModel::reliable(),
        &RetryPolicy::unlimited(1_000_000),
        BASE_SALT,
        &mut st,
    );
    assert!(
        lossless.outcome.delivered,
        "n={n}: lossless round undelivered"
    );
    for (got, want) in lossless.outcome.results.iter().zip(exec_state.results()) {
        assert_eq!(
            got.expect("lossless result").to_bits(),
            want.to_bits(),
            "n={n}: simulator diverged from the compiled executor at p=0"
        );
    }

    // The distributed cover solve must have converged to exactly the
    // centralized optimum; record its protocol effort.
    let dvc = solve_distributed(plan.topology(), &spec);
    let dvc_agrees = dvc.agrees_with(plan.solutions()) && dvc.patches == plan.repair_count();
    assert!(
        dvc_agrees,
        "n={n}: distributed solve diverged from the plan"
    );

    // The timed lossy epoch, through one warm state.
    let model = DeliveryModel::uniform(LOSS_P, SEED ^ 0xd15c);
    let policy = RetryPolicy::bounded(4, 1, 1_000_000);
    let batch: Vec<Vec<f64>> = (0..rounds)
        .map(|round| sources.iter().map(|&s| reading(s, round)).collect())
        .collect();
    let mut outcomes: Vec<SimOutcome> = Vec::with_capacity(rounds);
    let epoch_ns = time_ns(|| {
        for (round, readings) in batch.iter().enumerate() {
            let salt = BASE_SALT.wrapping_add((round as u64).wrapping_mul(SALT_STRIDE));
            outcomes.push(sim.run(readings, &model, &policy, salt, &mut st));
        }
    });
    let digest = digest_outcomes(&outcomes);

    // Replay the epoch through the same warm state: the simulator is a
    // pure function of (readings, model, policy, salt).
    let mut replay: Vec<SimOutcome> = Vec::with_capacity(rounds);
    for (round, readings) in batch.iter().enumerate() {
        let salt = BASE_SALT.wrapping_add((round as u64).wrapping_mul(SALT_STRIDE));
        replay.push(sim.run(readings, &model, &policy, salt, &mut st));
    }
    assert_eq!(
        digest_outcomes(&replay),
        digest,
        "n={n}: epoch replay diverged"
    );

    let events: u64 = outcomes.iter().map(|o| o.events).sum();
    let events_per_sec = events as f64 / (epoch_ns / 1e9).max(1e-9);
    let delivered = outcomes.iter().filter(|o| o.outcome.delivered).count() as f64 / rounds as f64;
    let retransmissions: usize = outcomes.iter().map(|o| o.outcome.retransmissions).sum();
    let peak_queue_depth = outcomes
        .iter()
        .map(|o| o.peak_queue_depth)
        .max()
        .unwrap_or(0);
    let queue_overflows: u64 = outcomes.iter().map(|o| o.queue_overflows).sum();

    m2m_log!(
        Level::Info,
        "n={n}: {rounds} lossy rounds, {events} events ({events_per_sec:.0}/s), \
         delivered {delivered:.2}, {retransmissions} retx, peak queue {peak_queue_depth}, \
         dvc {} rounds / {} messages, digest 0x{digest:016x}",
        dvc.rounds,
        dvc.messages
    );

    SizePoint {
        nodes: n,
        destinations: dests,
        sources: sources.len(),
        messages: sim.message_count(),
        components: sim.component_count(),
        rounds,
        events,
        events_per_sec,
        delivered,
        retransmissions,
        peak_queue_depth,
        queue_overflows,
        digest,
        dvc_rounds: dvc.rounds,
        dvc_messages: dvc.messages,
        dvc_patches: dvc.patches,
        dvc_agrees,
    }
}

/// `--check`: parse an artifact and assert the schema the gate relies on.
fn check_artifact(path: &str) {
    let value = m2m_bench::report::check_header(path, "sim_runtime");
    let sizes = match value.get("sizes") {
        Some(JsonValue::Array(rows)) if !rows.is_empty() => rows,
        _ => panic!("{path}: missing or empty sizes array"),
    };
    for row in sizes {
        for field in ["nodes", "events", "events_per_sec", "digest", "dvc_rounds"] {
            assert!(row.get(field).is_some(), "{path}: size row missing {field}");
        }
        assert!(
            matches!(row.get("dvc_agrees"), Some(JsonValue::Bool(true))),
            "{path}: a size point recorded a diverged distributed solve"
        );
    }
    println!("check_ok={path} sizes={}", sizes.len());
}

fn main() {
    telemetry::init_logging(Level::Info);
    let cli = m2m_bench::report::BenchCli::parse("BENCH_sim.json");
    if let Some(path) = &cli.check {
        check_artifact(path);
        return;
    }
    let smoke = cli.smoke;
    let mut nodes = cli.nodes;
    if nodes.is_empty() {
        nodes = vec![1_000, 10_000, 100_000];
    }
    if smoke {
        nodes = vec![1_000];
    }

    let mut rows = Vec::new();
    let mut smoke_point = None;
    for &n in &nodes {
        let rounds = cli.count.unwrap_or(if smoke { 12 } else { rounds_for(n) });
        let point = run_size(n, rounds);
        rows.push(
            JsonValue::object()
                .with("nodes", point.nodes)
                .with("destinations", point.destinations)
                .with("sources", point.sources)
                .with("messages_per_round", point.messages)
                .with("components", point.components)
                .with("rounds", point.rounds)
                .with("loss_p", JsonValue::float(LOSS_P, 3))
                .with("events", point.events)
                .with("events_per_sec", JsonValue::float(point.events_per_sec, 0))
                .with("delivered_fraction", JsonValue::float(point.delivered, 4))
                .with("retransmissions", point.retransmissions)
                .with("peak_queue_depth", u64::from(point.peak_queue_depth))
                .with("queue_overflows", point.queue_overflows)
                .with("digest", format!("0x{:016x}", point.digest))
                .with("dvc_rounds", point.dvc_rounds)
                .with("dvc_messages", point.dvc_messages)
                .with("dvc_patches", point.dvc_patches)
                .with("dvc_agrees", point.dvc_agrees),
        );
        smoke_point = Some(point);
    }

    if smoke {
        let point = smoke_point.expect("smoke point ran");
        println!("smoke_sim_events_per_sec={:.2}", point.events_per_sec);
        println!("smoke_sim_digest=0x{:016x}", point.digest);
        return;
    }

    let report = bench_report("sim_runtime", "scaled_series_uniform")
        .with("sources_per_destination", 20usize)
        .with("seed", SEED)
        .with("sizes", JsonValue::Array(rows));
    m2m_bench::report::write_report(&cli.out_path, &report);
    if let Some(path) = telemetry::export_if_requested() {
        m2m_log!(Level::Info, "exported telemetry snapshot to {path}");
    }
}
