//! Ablation studies for the §3 design choices DESIGN.md calls out —
//! mechanisms the paper sketches but does not plot:
//!
//! 1. broadcast transmission of shared units (§3 + footnote 1),
//! 2. milestone spacing vs link-failure rate (§3 "Flexibility Trade-Off"),
//! 3. collision-free slot scheduling: makespan and radio-on time (§3),
//! 4. plan dissemination: full install vs Corollary 1 incremental update,
//! 5. in-network vs out-of-network control: hotspot and lifetime (§1).
//!
//! ```text
//! cargo run --release -p m2m-bench --bin ablations
//! ```

use m2m_core::baselines::{plan_for_algorithm, Algorithm};
use m2m_core::basestation::{choose_station, BaseStationPlan};
use m2m_core::dissemination::{full_install_cost, update_install_cost};
use m2m_core::dynamics::{PlanMaintainer, WorkloadUpdate};
use m2m_core::metrics::{project_lifetime, NodeEnergyLedger};
use m2m_core::milestones::{build_milestone_routing, CompiledMilestoneCost, MilestoneConfig};
use m2m_core::plan::GlobalPlan;
use m2m_core::schedule::build_schedule;
use m2m_core::slots::assign_slots;
use m2m_core::tables::NodeTables;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

fn main() {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));

    broadcast_ablation(&network);
    milestone_ablation(&network);
    slots_ablation(&network);
    dissemination_ablation(&network);
    out_of_network_ablation(&network);
    routing_mode_ablation(&network);
    sharing_ablation(&network);
    header_size_ablation();
    record_size_ablation(&network);
    topology_ablation();
    redundancy_ablation(&network);
}

/// §3 "Handling Failures": delivery coverage around failed relay nodes,
/// with aggregation state at the transition node only vs replicated along
/// the path (the tech report's redundant-state technique).
fn redundancy_ablation(network: &Network) {
    use m2m_core::redundancy::delivery_coverage;
    use m2m_core::suppression::{StatePlacement, SuppressionSim};
    use std::collections::BTreeSet;
    println!();
    println!("# Ablation 11: node failures and redundant state (§3)");
    println!("failed_relays,coverage_default,coverage_redundant");
    let spec = generate_workload(network, &WorkloadConfig::paper_default(14, 15, 21));
    let routing = RoutingTables::build(
        network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(network, &spec, &routing);
    let participants: BTreeSet<_> = spec
        .all_sources()
        .into_iter()
        .chain(spec.destinations())
        .collect();
    let relays: Vec<_> = network
        .nodes()
        .filter(|v| !participants.contains(v))
        .collect();
    for k in [0usize, 2, 4, 8] {
        let failed: BTreeSet<_> = relays.iter().copied().take(k).collect();
        let lean = delivery_coverage(
            network,
            &spec,
            &routing,
            &plan,
            &failed,
            StatePlacement::TransitionOnly,
        );
        let fat = delivery_coverage(
            network,
            &spec,
            &routing,
            &plan,
            &failed,
            StatePlacement::EveryNode,
        );
        println!("{k},{lean:.3},{fat:.3}");
    }
    let sim = SuppressionSim::new(network, &spec, &routing, &plan);
    println!(
        "# state cost: {} entries (default) vs {} entries (redundant)",
        sim.state_entries(StatePlacement::TransitionOnly),
        sim.state_entries(StatePlacement::EveryNode)
    );
}

/// Sensitivity to the per-message header: with huge headers message
/// *count* dominates (merging is everything); with tiny headers payload
/// bytes dominate (the cover choice is everything).
fn header_size_ablation() {
    use m2m_netsim::EnergyModel;
    println!();
    println!("# Ablation 8: header-size sensitivity (round energy, mJ)");
    println!("header_bytes,optimal,multicast,aggregation,optimal_saving_pct");
    for header in [0u32, 4, 12, 24, 48] {
        let energy = EnergyModel {
            header_bytes: header,
            ..EnergyModel::mica2()
        };
        let network = Network::new(Deployment::great_duck_island(1), energy);
        let spec = generate_workload(&network, &WorkloadConfig::paper_default(14, 20, 3));
        let routing = RoutingTables::build(
            &network,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cost = |alg| {
            let plan = plan_for_algorithm(&network, &spec, &routing, alg);
            build_schedule(&spec, &plan)
                .unwrap()
                .round_cost(network.energy())
                .total_mj()
        };
        let opt = cost(Algorithm::Optimal);
        let mc = cost(Algorithm::Multicast);
        let ag = cost(Algorithm::Aggregation);
        println!(
            "{header},{opt:.1},{mc:.1},{ag:.1},{:.1}",
            (mc.min(ag) - opt) / mc.min(ag) * 100.0
        );
    }
}

/// Sensitivity to the partial-record size (§2.2's vertex weights): small
/// records pull covers toward aggregation, large records toward raw
/// multicast.
fn record_size_ablation(network: &Network) {
    use m2m_core::agg::AggregateKind;
    println!();
    println!("# Ablation 9: record-size sensitivity of the optimal cover");
    println!("kind,record_bytes,raw_units,record_units,raw_fraction");
    for kind in [
        AggregateKind::Count,
        AggregateKind::WeightedSum,
        AggregateKind::WeightedAverage,
        AggregateKind::Range,
        AggregateKind::WeightedVariance,
    ] {
        let spec = generate_workload(
            network,
            &WorkloadConfig {
                kind,
                ..WorkloadConfig::paper_default(14, 20, 3)
            },
        );
        let routing = RoutingTables::build(
            network,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = plan_for_algorithm(network, &spec, &routing, Algorithm::Optimal);
        let s = plan.summary();
        println!(
            "{kind:?},{},{},{},{:.2}",
            kind.partial_record_bytes(),
            s.raw_units,
            s.record_units,
            s.raw_units as f64 / (s.raw_units + s.record_units) as f64
        );
    }
}

/// The same workload shape over three deployment geometries.
fn topology_ablation() {
    println!();
    println!("# Ablation 10: deployment geometry (optimal plan, round energy mJ)");
    println!("topology,nodes,links,optimal,multicast,aggregation");
    let layouts: Vec<(&str, Network)> = vec![
        (
            "gdi",
            Network::with_default_energy(Deployment::great_duck_island(1)),
        ),
        (
            "clustered",
            Network::with_default_energy(Deployment::clustered(68, 5, 106.0, 203.0, 22.0, 50.0, 1)),
        ),
        (
            "grid",
            Network::with_default_energy(Deployment::grid(8, 8, 22.0, 50.0)),
        ),
    ];
    for (name, network) in layouts {
        let dests = network.node_count() / 5;
        let spec = generate_workload(&network, &WorkloadConfig::paper_default(dests, 15, 3));
        let routing = RoutingTables::build(
            &network,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let cost = |alg| {
            let plan = plan_for_algorithm(&network, &spec, &routing, alg);
            build_schedule(&spec, &plan)
                .unwrap()
                .round_cost(network.energy())
                .total_mj()
        };
        println!(
            "{name},{},{},{:.1},{:.1},{:.1}",
            network.node_count(),
            network.graph().edge_count(),
            cost(Algorithm::Optimal),
            cost(Algorithm::Multicast),
            cost(Algorithm::Aggregation)
        );
    }
}

/// The §5 future-work direction: how much payload would sharing identical
/// partial records across destinations save? Zero when every destination
/// weights its sources differently (the random-weight workload);
/// substantial when destinations run similar functions (weights unified).
fn sharing_ablation(network: &Network) {
    use m2m_core::agg::AggregateFunction;
    use m2m_core::sharing::shared_record_analysis;
    use m2m_core::spec::AggregationSpec;
    println!();
    println!("# Ablation 7: shared partial aggregates across destinations (§5 future work)");
    println!("workload,records,redundant,payload_bytes,with_sharing,savings_pct");
    let spec = generate_workload(network, &WorkloadConfig::paper_default(10, 20, 13));
    // A twin workload — "multiple destinations have very similar
    // aggregations": each destination gets a neighboring twin running the
    // *identical* function, so their records coincide until their routes
    // diverge near the end.
    let mut twinned = AggregationSpec::new();
    for (d, f) in spec.functions() {
        twinned.add_function(d, f.clone());
        if let Some(&twin) = network
            .neighbors(d)
            .iter()
            .find(|&&v| spec.function(v).is_none() && !f.has_source(v))
        {
            twinned.add_function(
                twin,
                AggregateFunction::new(
                    f.kind(),
                    f.sources()
                        .filter(|&s| s != twin)
                        .map(|s| (s, f.weight(s).unwrap()))
                        .collect::<Vec<_>>(),
                ),
            );
        }
    }
    for (label, s) in [("random", &spec), ("twinned", &twinned)] {
        let routing = RoutingTables::build(
            network,
            &s.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = GlobalPlan::build(network, s, &routing);
        let report = shared_record_analysis(s, &plan);
        println!(
            "{label},{},{},{},{},{:.1}",
            report.records,
            report.redundant_records,
            report.payload_bytes,
            report.payload_bytes_with_sharing,
            report.savings_fraction() * 100.0
        );
    }
}

/// The Figure 5 discussion: the paper's SPT construction "tends to create
/// many edges that are not shared across trees" and joint routing/
/// processing design is future work. Compare the optimal plan over three
/// tree constructions as dispersion grows.
fn routing_mode_ablation(network: &Network) {
    use m2m_core::workload::SourceSelection;
    println!();
    println!("# Ablation 6: multicast tree construction (optimal plan round energy, mJ)");
    println!("dispersion,spt,shared_spanning,steiner,spt_edges,steiner_edges");
    for tenths in [0u32, 5, 10] {
        let d = f64::from(tenths) / 10.0;
        let spec = generate_workload(
            network,
            &WorkloadConfig {
                selection: SourceSelection::Dispersion {
                    dispersion: d,
                    max_hops: 4,
                },
                ..WorkloadConfig::paper_default(14, 20, 11)
            },
        );
        let mut energies = Vec::new();
        let mut edge_counts = Vec::new();
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let routing = RoutingTables::build(network, &spec.source_to_destinations(), mode);
            let plan = plan_for_algorithm(network, &spec, &routing, Algorithm::Optimal);
            let schedule = build_schedule(&spec, &plan).unwrap();
            energies.push(schedule.round_cost(network.energy()).total_mj());
            edge_counts.push(routing.directed_edges().len());
        }
        println!(
            "{d:.1},{:.1},{:.1},{:.1},{},{}",
            energies[0], energies[1], energies[2], edge_counts[0], edge_counts[2]
        );
    }
}

fn broadcast_ablation(network: &Network) {
    println!("# Ablation 1: broadcast of shared units (round energy, mJ)");
    println!("destinations,unicast,broadcast,saving_pct");
    for dests in [7usize, 14, 34, 68] {
        let spec = generate_workload(network, &WorkloadConfig::paper_default(dests, 20, 3));
        let routing = RoutingTables::build(
            network,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = plan_for_algorithm(network, &spec, &routing, Algorithm::Optimal);
        let schedule = build_schedule(&spec, &plan).unwrap();
        let uni = schedule.round_cost(network.energy()).total_mj();
        let bc = schedule
            .round_cost_with_broadcast(network.energy())
            .total_mj();
        println!("{dests},{uni:.1},{bc:.1},{:.1}", (uni - bc) / uni * 100.0);
    }
    println!();
}

fn milestone_ablation(network: &Network) {
    println!("# Ablation 2: milestone spacing vs link-failure rate (expected round energy, mJ)");
    let spec = generate_workload(network, &WorkloadConfig::paper_default(14, 15, 5));
    let routing = RoutingTables::build(
        network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    println!("failure_p,spacing1,spacing2,spacing4");
    let spacings = [1u32, 2, 4];
    let setups: Vec<_> = spacings
        .iter()
        .map(|&spacing| {
            let cfg = MilestoneConfig {
                spacing,
                detour_overhead: 0.5,
            };
            let m = build_milestone_routing(network, &routing, &cfg);
            let plan = GlobalPlan::build_unchecked(&spec, &m.routing);
            CompiledMilestoneCost::new(&plan, &m, network.energy(), &cfg)
        })
        .collect();
    for p in [0.0, 0.1, 0.2, 0.4, 0.6] {
        let row: Vec<String> = setups
            .iter()
            .map(|compiled| format!("{:.1}", compiled.expected_cost(p).total_mj()))
            .collect();
        println!("{p:.1},{}", row.join(","));
    }
    println!();
}

fn slots_ablation(network: &Network) {
    println!("# Ablation 3: TDMA slots (makespan, radio-on fraction)");
    println!("destinations,messages,slots,listen_fraction");
    for dests in [7usize, 14, 34] {
        let spec = generate_workload(network, &WorkloadConfig::paper_default(dests, 15, 7));
        let routing = RoutingTables::build(
            network,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        let plan = plan_for_algorithm(network, &spec, &routing, Algorithm::Optimal);
        let schedule = build_schedule(&spec, &plan).unwrap();
        let slots = assign_slots(network, &schedule);
        println!(
            "{dests},{},{},{:.3}",
            schedule.messages.len(),
            slots.slot_count,
            slots.listen_fraction(&schedule, network)
        );
    }
    println!();
}

fn dissemination_ablation(network: &Network) {
    println!("# Ablation 4: plan dissemination (Corollary 1)");
    println!("event,changed_nodes,bytes,energy_mJ");
    let spec = generate_workload(network, &WorkloadConfig::paper_default(14, 15, 9));
    let station = choose_station(network);
    let mut maintainer = PlanMaintainer::new(network.clone(), spec, RoutingMode::ShortestPathTrees);
    let tables = NodeTables::build(maintainer.spec(), maintainer.plan());
    let full = full_install_cost(network, station, &tables);
    println!(
        "full_install,{},{},{:.2}",
        tables.nodes().count(),
        full.payload_bytes,
        full.total_mj()
    );
    let d = maintainer.spec().destinations().next().unwrap();
    let s = maintainer
        .spec()
        .all_sources()
        .into_iter()
        .find(|&s| !maintainer.spec().is_source_of(s, d) && s != d)
        .unwrap();
    maintainer.apply(WorkloadUpdate::AddSource {
        destination: d,
        source: s,
        weight: 1.0,
    });
    let new_tables = NodeTables::build(maintainer.spec(), maintainer.plan());
    let update = update_install_cost(network, station, &tables, &new_tables);
    println!(
        "add_one_source,{},{},{:.2}",
        m2m_core::dissemination::changed_nodes(&tables, &new_tables).len(),
        update.payload_bytes,
        update.total_mj()
    );
    println!();
}

fn out_of_network_ablation(network: &Network) {
    println!("# Ablation 5: in-network vs out-of-network control (§1)");
    println!("strategy,round_mJ,hotspot_mJ,imbalance,lifetime_rounds");
    let spec = generate_workload(network, &WorkloadConfig::paper_default(17, 15, 3));
    let routing = RoutingTables::build(
        network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let battery_uj = 2.0 * 3600.0 * 3.0 * 1e6;
    let print_row = |name: &str, ledger: &NodeEnergyLedger| {
        let life = project_lifetime(ledger, battery_uj);
        println!(
            "{name},{:.1},{:.2},{:.1},{:.0}",
            ledger.total_uj() / 1000.0,
            ledger.hotspot().1 / 1000.0,
            life.imbalance,
            life.rounds_until_first_death
        );
    };
    for alg in Algorithm::PLANNED {
        let plan = plan_for_algorithm(network, &spec, &routing, alg);
        let schedule = build_schedule(&spec, &plan).unwrap();
        let mut ledger = NodeEnergyLedger::new(network.node_count());
        schedule.charge_round(network.energy(), &mut ledger);
        print_row(alg.name(), &ledger);
    }
    let bs = BaseStationPlan::build(network, &spec, choose_station(network));
    let (_, ledger) = bs.round_cost(network);
    print_row("BaseStation", &ledger);
}
