//! Multi-tenant plan-service benchmark: admission throughput and the
//! marginal cost of the Nth query on one shared 1k-node deployment.
//!
//! A [`PlanService`] admits tenants drawn from a small pool of workload
//! templates, so later admissions repeat earlier demand shapes exactly —
//! the regime the service optimizes for: interned routing substrates and
//! the cross-tenant [`SharedSolveCache`] turn the Nth admission into a
//! lookup over everything an earlier tenant already solved. Every
//! admission is timed individually; the headline columns are
//! specs-admitted/sec and the marginal-cost curve (admission wall time at
//! tenants 1/8/64/256).
//!
//! Before writing anything the run proves the sharing is free:
//!
//! * a repeat tenant's plan and round results are **bit-identical** to a
//!   [`Session`] built in isolation over the same network;
//! * the 64th tenant's admission costs at most 25% of the 1st tenant's
//!   cold build (asserted in-run, recorded in the artifact);
//! * checkpoint → restore → checkpoint round-trips byte-identically,
//!   the restore performs zero fresh solves, and a lossy tenant's salt
//!   stream replays bit-for-bit from its resumed cursor.
//!
//! Usage: `cargo run --release -p m2m-bench --bin bench_service -- \
//!         [--smoke] [--check <artifact.json>] [--nodes N] \
//!         [output.json] [tenants]`
//!
//! `--smoke` admits a reduced fleet and prints the machine-readable
//! lines `scripts/verify.sh` gates on:
//!
//! * `smoke_svc_admits_per_sec=` — admission throughput, gated against
//!   the `M2M_SVC_FLOOR` regression floor;
//! * `smoke_svc_digest=` — FNV-1a over the final checkpoint text, which
//!   must be identical across back-to-back runs.
//!
//! `--check` parses an existing artifact and asserts the schema the
//! gate relies on, including the committed marginal-cost bound.

use std::collections::BTreeMap;
use std::sync::Arc;

use m2m_bench::report::{bench_report, check_header, time_ns, BenchCli, JsonValue};
use m2m_core::config::{Config, Runtime};
use m2m_core::service::{PlanService, TenantId, TenantOptions};
use m2m_core::session::Session;
use m2m_core::spec::AggregationSpec;
use m2m_core::telemetry::Level;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_core::{m2m_log, telemetry};
use m2m_graph::NodeId;
use m2m_netsim::failure::DeliveryModel;
use m2m_netsim::{Deployment, Network, RoutingMode};

/// Deployment/workload seed shared by every run.
const SEED: u64 = 7;
/// Distinct workload templates in the tenant pool; admissions cycle
/// through them, so tenant T repeats template T mod POOL.
const POOL: usize = 8;
/// Base salt for the lossy showcase tenant's replayable stream.
const BASE_SALT: u64 = 0x5e7_f1ee7;
/// The in-run bound: the 64th admission may cost at most this fraction
/// of the 1st (mirrored by the artifact check).
const MARGINAL_BUDGET: f64 = 0.25;
/// Tenant counts the marginal-cost curve samples (1-indexed).
const CURVE_POINTS: [usize; 4] = [1, 8, 64, 256];

/// The template pool: `POOL` distinct demand shapes over `net`.
fn templates(net: &Network) -> Vec<AggregationSpec> {
    let dests = (net.node_count() / 40).clamp(8, 250);
    (0..POOL as u64)
        .map(|i| generate_workload(net, &WorkloadConfig::paper_default(dests, 20, SEED + i)))
        .collect()
}

fn readings(net: &Network) -> BTreeMap<NodeId, f64> {
    net.nodes()
        .map(|v| {
            let x = f64::from(v.0) * 0.73;
            (v, x.sin() * 35.0 + f64::from(v.0) * 0.01)
        })
        .collect()
}

/// FNV-1a over the checkpoint text: equal digests iff the admitted
/// specs, plan slabs, and salt cursors are byte-identical.
fn digest_text(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct AdmitPoint {
    tenant: usize,
    admit_ns: f64,
    solves_fresh: u64,
    solves_cached: u64,
    reused_substrate: bool,
}

fn main() {
    telemetry::init_logging(Level::Info);
    let cli = BenchCli::parse("BENCH_service.json");
    if let Some(path) = &cli.check {
        check_artifact(path);
        return;
    }
    let node_count = cli.nodes.first().copied().unwrap_or(1_000);
    let tenant_count = cli.count.unwrap_or(if cli.smoke { 64 } else { 256 });
    assert!(
        tenant_count >= 64,
        "the marginal-cost bound needs 64 tenants"
    );

    let deployment = Deployment::scaled_series(&[node_count], SEED).remove(0);
    let net = Arc::new(Network::with_default_energy(deployment));
    let pool = templates(&net);
    let vals = readings(&net);
    m2m_log!(
        Level::Info,
        "deployment: {} nodes, {POOL} templates, {tenant_count} tenants",
        net.node_count()
    );

    // Timed admission sweep: every tenant individually, pool cycling.
    // Steiner routing makes the cold front-end honest: the Takahashi–
    // Matsuyama forest is the expensive part a repeat tenant skips.
    let mut svc = PlanService::new(Arc::clone(&net));
    let mut admits: Vec<AdmitPoint> = Vec::with_capacity(tenant_count);
    let mut ids: Vec<TenantId> = Vec::with_capacity(tenant_count);
    for t in 0..tenant_count {
        let spec = pool[t % POOL].clone();
        let options = TenantOptions {
            mode: RoutingMode::SteinerTrees,
            ..TenantOptions::default()
        };
        let mut admission = None;
        let ns = time_ns(|| admission = Some(svc.admit_with(spec, options)));
        let admission = admission.expect("admission ran");
        ids.push(admission.tenant);
        admits.push(AdmitPoint {
            tenant: t + 1,
            admit_ns: ns,
            solves_fresh: admission.solves_fresh,
            solves_cached: admission.solves_cached,
            reused_substrate: admission.reused_substrate,
        });
    }
    let total_ns: f64 = admits.iter().map(|a| a.admit_ns).sum();
    let admits_per_sec = tenant_count as f64 / (total_ns / 1e9).max(1e-9);
    let marginal_64 = admits[63].admit_ns / admits[0].admit_ns;
    assert!(
        marginal_64 <= MARGINAL_BUDGET,
        "64th admission cost {:.1}% of the 1st — budget is {:.0}%",
        marginal_64 * 100.0,
        MARGINAL_BUDGET * 100.0
    );
    assert!(
        admits[63].solves_fresh == 0 && admits[63].reused_substrate,
        "the 64th tenant repeats a template and must be served cached"
    );
    let cache_hit_rate = {
        let cache = svc.solve_cache();
        let c = cache.lock().expect("cache");
        c.hit_rate()
    };

    // Sharing is free: a repeat tenant is bit-identical to isolation.
    let probe = ids[POOL]; // first repeat of template 0
    let mut isolated = Session::builder(Arc::clone(&net), pool[0].clone())
        .routing_mode(RoutingMode::SteinerTrees)
        .build();
    assert_eq!(
        svc.tenant(probe)
            .expect("admitted")
            .driver()
            .maintainer()
            .plan()
            .solutions(),
        isolated.driver().maintainer().plan().solutions(),
        "shared-substrate plan diverged from the isolated build"
    );
    let got = svc.run(probe, &vals).expect("probe runs");
    let expect = isolated.run(&vals);
    assert_eq!(
        got, expect,
        "shared-substrate round diverged from isolation"
    );

    // Cross-tenant multi-query pricing over every admitted plan.
    let sharing = svc.sharing_report();
    m2m_log!(
        Level::Info,
        "sharing: {} tenants, {:.1}% payload saved, raw {} -> {}, records {} -> {}",
        sharing.tenants,
        sharing.savings_fraction() * 100.0,
        sharing.raw_units_isolated,
        sharing.raw_units_shared,
        sharing.record_units_isolated,
        sharing.record_units_shared
    );

    // Checkpoint/restore: advance a lossy tenant's salt stream, then
    // prove the round-trip is byte-identical, solve-free, and replays.
    let lossy = svc
        .admit_with(
            pool[0].clone(),
            TenantOptions {
                runtime: Some(Runtime::Lossy),
                delivery: DeliveryModel::uniform(0.1, SEED ^ 0xd15c),
                base_salt: BASE_SALT,
                ..TenantOptions::default()
            },
        )
        .tenant;
    for _ in 0..3 {
        svc.run(lossy, &vals).expect("lossy tenant runs");
    }
    let text = svc.checkpoint();
    let digest = digest_text(&text);
    let mut restored =
        PlanService::restore(Arc::clone(&net), Config::default(), &text).expect("restores");
    assert_eq!(
        restored.solve_cache().lock().expect("cache").misses(),
        0,
        "restore must be served entirely from the persisted slabs"
    );
    assert_eq!(
        digest_text(&restored.checkpoint()),
        digest,
        "checkpoint must round-trip byte-identically"
    );
    restored
        .tenant_mut(lossy)
        .expect("restored")
        .set_delivery(DeliveryModel::uniform(0.1, SEED ^ 0xd15c));
    for round in 0..2 {
        let a = svc.run(lossy, &vals).expect("original");
        let b = restored.run(lossy, &vals).expect("restored");
        assert_eq!(a, b, "replay round {round} diverged after restore");
    }
    m2m_log!(
        Level::Info,
        "checkpoint: {} bytes, digest 0x{digest:016x}, restore solve-free, replay exact",
        text.len()
    );

    let curve: Vec<&AdmitPoint> = CURVE_POINTS
        .iter()
        .filter(|&&p| p <= tenant_count)
        .map(|&p| &admits[p - 1])
        .collect();
    for a in &curve {
        m2m_log!(
            Level::Info,
            "tenant {:>3}: {:>12.0} ns admit, {} fresh / {} cached solves, substrate {}",
            a.tenant,
            a.admit_ns,
            a.solves_fresh,
            a.solves_cached,
            if a.reused_substrate {
                "reused"
            } else {
                "built"
            }
        );
    }

    println!("smoke_svc_admits_per_sec={admits_per_sec:.2}");
    println!("smoke_svc_digest=0x{digest:016x}");
    println!("smoke_svc_marginal_64_pct={:.3}", marginal_64 * 100.0);
    if cli.smoke {
        m2m_log!(
            Level::Info,
            "smoke: {tenant_count} tenants, 64th at {:.2}% of the 1st — OK",
            marginal_64 * 100.0
        );
        return;
    }

    let report = bench_report("service", &format!("scaled_series_{node_count}"))
        .with("nodes", net.node_count())
        .with("templates", POOL)
        .with("tenants", tenant_count)
        .with("seed", SEED)
        .with("admits_per_sec", JsonValue::float(admits_per_sec, 2))
        .with("marginal_64_pct", JsonValue::float(marginal_64 * 100.0, 3))
        .with(
            "marginal_budget_pct",
            JsonValue::float(MARGINAL_BUDGET * 100.0, 1),
        )
        .with("cache_hit_rate", JsonValue::float(cache_hit_rate, 4))
        .with("substrates", svc.substrate_count())
        .with("bit_identical", true)
        .with(
            "curve",
            JsonValue::Array(
                curve
                    .iter()
                    .map(|a| {
                        JsonValue::object()
                            .with("tenant", a.tenant)
                            .with("admit_ns", JsonValue::float(a.admit_ns, 0))
                            .with("solves_fresh", a.solves_fresh)
                            .with("solves_cached", a.solves_cached)
                            .with("reused_substrate", a.reused_substrate)
                    })
                    .collect(),
            ),
        )
        .with(
            "sharing",
            JsonValue::object()
                .with("tenants", sharing.tenants)
                .with("raw_units_isolated", sharing.raw_units_isolated)
                .with("raw_units_shared", sharing.raw_units_shared)
                .with("record_units_isolated", sharing.record_units_isolated)
                .with("record_units_shared", sharing.record_units_shared)
                .with("payload_bytes_isolated", sharing.payload_bytes_isolated)
                .with("payload_bytes_shared", sharing.payload_bytes_shared)
                .with(
                    "savings_fraction",
                    JsonValue::float(sharing.savings_fraction(), 4),
                ),
        )
        .with(
            "checkpoint",
            JsonValue::object()
                .with("bytes", text.len())
                .with("digest", format!("0x{digest:016x}"))
                .with("restore_fresh_solves", 0usize)
                .with("replay", "bit-identical"),
        );
    m2m_bench::report::write_report(&cli.out_path, &report);
    if let Some(path) = telemetry::export_if_requested() {
        m2m_log!(Level::Info, "exported telemetry snapshot to {path}");
    }
}

/// `--check`: parse an artifact and assert the schema the gate relies
/// on, including the committed marginal-cost bound.
fn check_artifact(path: &str) {
    let value = check_header(path, "service");
    for field in [
        "nodes",
        "tenants",
        "admits_per_sec",
        "cache_hit_rate",
        "sharing",
        "checkpoint",
    ] {
        assert!(value.get(field).is_some(), "{path}: missing {field}");
    }
    let marginal = value
        .get("marginal_64_pct")
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("{path}: missing marginal_64_pct"));
    let budget = value
        .get("marginal_budget_pct")
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("{path}: missing marginal_budget_pct"));
    assert!(
        marginal <= budget,
        "{path}: 64th-tenant marginal cost {marginal:.2}% breaches the {budget:.0}% budget"
    );
    assert!(
        matches!(value.get("bit_identical"), Some(JsonValue::Bool(true))),
        "{path}: artifact did not assert tenant bit-identity"
    );
    let curve = match value.get("curve") {
        Some(JsonValue::Array(rows)) if !rows.is_empty() => rows,
        _ => panic!("{path}: missing or empty curve"),
    };
    for row in curve {
        for field in ["tenant", "admit_ns", "solves_fresh", "solves_cached"] {
            assert!(
                row.get(field).is_some(),
                "{path}: curve row missing {field}"
            );
        }
    }
    assert_eq!(
        value
            .get("checkpoint")
            .and_then(|c| c.get("replay"))
            .and_then(JsonValue::as_str),
        Some("bit-identical"),
        "{path}: checkpoint replay was not verified"
    );
    println!("check_ok={path} curve_points={}", curve.len());
}
