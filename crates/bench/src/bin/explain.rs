//! Plan-explainability CLI: why does each edge carry what it carries?
//!
//! Builds the optimal plan for a workload (generated from flags, or
//! loaded from a `textio` scenario file) and prints the
//! [`m2m_core::telemetry::explain`] report: for every directed tree edge,
//! which values travel as raw readings and which as partial-aggregate
//! records, with the vertex-cover rationale and the byte costs of the
//! alternatives. Text by default, `--json` for the machine-readable
//! mirror.
//!
//! ```text
//! cargo run --release -p m2m-bench --bin explain -- \
//!     --nodes 30 --destinations 4 --sources 6 --seed 7 [--json]
//! ```

use m2m_core::plan::GlobalPlan;
use m2m_core::telemetry::{explain, Level};
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_core::{m2m_log, telemetry};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

struct Args {
    nodes: usize,
    destinations: usize,
    sources: usize,
    seed: u64,
    json: bool,
    load: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            nodes: 30,
            destinations: 4,
            sources: 6,
            seed: 7,
            json: false,
            load: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--nodes" => args.nodes = value()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--destinations" => {
                args.destinations = value()?
                    .parse()
                    .map_err(|e| format!("--destinations: {e}"))?
            }
            "--sources" => {
                args.sources = value()?.parse().map_err(|e| format!("--sources: {e}"))?
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => args.json = true,
            "--load" => args.load = Some(value()?),
            "--help" | "-h" => {
                println!(
                    "usage: explain [--nodes N] [--destinations N] [--sources N] [--seed N] \
                     [--load FILE] [--json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    telemetry::init_logging(Level::Info);
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            m2m_log!(Level::Error, "error: {e}");
            std::process::exit(2);
        }
    };

    let (network, spec) = if let Some(path) = &args.load {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let (deployment, spec) = m2m_core::textio::from_text(&text)
            .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        (Network::with_default_energy(deployment), spec)
    } else {
        let network = if args.nodes == 68 {
            Network::with_default_energy(Deployment::great_duck_island(args.seed))
        } else {
            let series = Deployment::scaled_series(&[args.nodes], args.seed);
            Network::with_default_energy(series.into_iter().next().expect("one deployment"))
        };
        let spec = generate_workload(
            &network,
            &WorkloadConfig::paper_default(args.destinations, args.sources, args.seed),
        );
        (network, spec)
    };

    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);
    let report = explain(&plan, &spec);
    if args.json {
        print!("{}", report.to_json().render());
    } else {
        print!("{}", report.to_text());
    }
    if let Some(path) = telemetry::export_if_requested() {
        m2m_log!(Level::Info, "exported telemetry snapshot to {path}");
    }
}
