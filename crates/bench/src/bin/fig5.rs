//! Figure 5: varying the dispersion factor.
//!
//! 68-node Great Duck Island layout, 20% of nodes as destinations, each
//! aggregating 20 sources chosen from 1–4 hops away with dispersion
//! factor d ∈ [0, 1]. Series: Optimal, Multicast, Aggregation; average
//! round energy (mJ). (The paper omits Flood here.)

fn main() {
    m2m_bench::figures::figure5_data().print_csv();
}
