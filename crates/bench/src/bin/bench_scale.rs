//! Plan front-end scaling benchmark: routing → topology interning →
//! edge-problem construction → per-edge solves, each stage timed
//! separately over a density-preserving scaled series (1k/10k/100k
//! nodes by default).
//!
//! The workload follows the paper's network-size setup (Figure 6):
//! destinations sampled uniformly, each destination's sources sampled
//! uniformly from the whole network. Demand volume is n/4 destinations
//! × 20 sources per destination up to 10k nodes; above that the demand
//! count is pinned at 250 destinations so the sweep isolates graph-size
//! scaling in the per-source routing stage (and completes in minutes).
//!
//! Usage: `bench_scale [--smoke] [--nodes N1,N2,...] [out.json]`
//!
//! `--smoke` runs the 1k-node point once and prints machine-readable
//! `smoke_*` lines for scripts/verify.sh:
//!
//! * `smoke_builds_per_sec=` — serial spec→plan front-end builds per
//!   second (routing + intern + problems + solve), gated against the
//!   `M2M_BUILD_FLOOR` regression floor by the verify script;
//! * `smoke_forest_digest=` — FNV-1a over the routing forest's directed
//!   edge set, which must be identical across back-to-back runs (and is
//!   cross-checked in-process against the per-tree edge union).

use m2m_bench::report::{bench_report, median_ns, time_ns, JsonValue};
use m2m_core::edge_opt::{build_edge_problems, solve_edge_slab};
use m2m_core::plan::GlobalPlan;
use m2m_core::telemetry::Level;
use m2m_core::topo::Topology;
use m2m_core::workload::{generate_workload, SourceSelection, WorkloadConfig};
use m2m_core::{m2m_log, telemetry};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

/// Workload seed shared by every size point (deployment and demand).
const SEED: u64 = 7;

/// Destinations for an `n`-node point: the paper's 25% up to 10k nodes,
/// pinned above that so the sweep isolates graph-size scaling.
fn destinations_for(n: usize) -> usize {
    if n <= 10_000 {
        (n / 4).max(4)
    } else {
        250
    }
}

/// Timing samples per stage: more where a run is cheap.
fn samples_for(n: usize) -> usize {
    if n <= 2_500 {
        5
    } else if n <= 25_000 {
        2
    } else {
        1
    }
}

/// FNV-1a over the directed edge set, the forest's structural digest.
fn digest_edges(edges: &[(m2m_graph::NodeId, m2m_graph::NodeId)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &(a, b) in edges {
        fold(u64::from(a.0));
        fold(u64::from(b.0));
    }
    h
}

struct SizePoint {
    nodes: usize,
    destinations: usize,
    sources: usize,
    edge_count: usize,
    routing_ns: f64,
    intern_ns: f64,
    problems_ns: f64,
    solve_ns: f64,
    frontend_ns: f64,
    routing_slab_bytes: usize,
    topo_slab_bytes: usize,
    digest: u64,
}

fn run_size(n: usize, samples: usize) -> SizePoint {
    let deployment = Deployment::scaled_series(&[n], SEED).remove(0);
    let network = Network::with_default_energy(deployment);
    let dests = destinations_for(n);
    let cfg = WorkloadConfig {
        selection: SourceSelection::Uniform,
        ..WorkloadConfig::paper_default(dests, 20, SEED)
    };
    let spec = generate_workload(&network, &cfg);
    let demands = spec.source_to_destinations();
    m2m_log!(
        Level::Info,
        "n={n}: {} destinations, {} sources, {} radio links",
        dests,
        demands.len(),
        network.graph().edge_count()
    );

    let mut routing_times = Vec::with_capacity(samples);
    let mut routing = None;
    for _ in 0..samples {
        routing_times.push(time_ns(|| {
            routing = Some(RoutingTables::build(
                &network,
                &demands,
                RoutingMode::ShortestPathTrees,
            ));
        }));
    }
    let routing = routing.expect("routing built");
    let routing_ns = median_ns(&mut routing_times);

    // The cached directed edge set must agree with the per-tree union —
    // the forest and its tree views describe one structure.
    let mut union: Vec<(m2m_graph::NodeId, m2m_graph::NodeId)> = routing
        .trees()
        .flat_map(|(_, t)| t.edges().collect::<Vec<_>>())
        .collect();
    union.sort_unstable();
    union.dedup();
    assert_eq!(
        union,
        routing.directed_edges(),
        "directed-edge cache diverged from the per-tree union"
    );
    let digest = digest_edges(routing.directed_edges());

    let mut intern_times = Vec::with_capacity(samples);
    let mut topo = None;
    for _ in 0..samples {
        intern_times.push(time_ns(|| {
            topo = Some(Topology::snapshot(&spec, &routing));
        }));
    }
    let topo = topo.expect("snapshot taken");
    let intern_ns = median_ns(&mut intern_times);

    let mut problem_times = Vec::with_capacity(samples);
    let mut problems = None;
    for _ in 0..samples {
        problem_times.push(time_ns(|| {
            problems = Some(build_edge_problems(&topo));
        }));
    }
    let problems = problems.expect("problems built");
    let problems_ns = median_ns(&mut problem_times);

    let mut solve_times = Vec::with_capacity(samples);
    let mut solutions = None;
    for _ in 0..samples {
        solve_times.push(time_ns(|| {
            solutions = Some(solve_edge_slab(&problems, &spec, 1));
        }));
    }
    let solutions = solutions.expect("solved");
    assert_eq!(solutions.len(), problems.len());
    let solve_ns = median_ns(&mut solve_times);

    // Cross-check: the staged pipeline above must agree with the real
    // plan builder (which adds the repair sweep on top).
    let plan = GlobalPlan::build_with_threads(&network, &spec, &routing, 1);
    assert_eq!(plan.problems().len(), problems.len());

    let frontend_ns = routing_ns + intern_ns + problems_ns + solve_ns;
    m2m_log!(
        Level::Info,
        "n={n}: routing {:.2} ms, intern {:.2} ms, problems {:.2} ms, \
         solve {:.2} ms ({} edges, {:.2} ms front-end)",
        routing_ns / 1e6,
        intern_ns / 1e6,
        problems_ns / 1e6,
        solve_ns / 1e6,
        problems.len(),
        frontend_ns / 1e6
    );

    SizePoint {
        nodes: n,
        destinations: dests,
        sources: demands.len(),
        edge_count: problems.len(),
        routing_ns,
        intern_ns,
        problems_ns,
        solve_ns,
        frontend_ns,
        routing_slab_bytes: routing.slab_bytes(),
        topo_slab_bytes: topo.slab_bytes(),
        digest,
    }
}

fn main() {
    telemetry::init_logging(Level::Info);
    let cli = m2m_bench::report::BenchCli::parse("BENCH_scale.json");
    let smoke = cli.smoke;
    let out_path = cli.out_path;
    let mut nodes = cli.nodes;
    if nodes.is_empty() {
        nodes = vec![1_000, 10_000, 100_000];
    }
    if smoke {
        nodes = vec![1_000];
    }

    let mut rows = Vec::new();
    let mut smoke_point = None;
    for &n in &nodes {
        let point = run_size(n, if smoke { 2 } else { samples_for(n) });
        rows.push(
            JsonValue::object()
                .with("nodes", point.nodes)
                .with("destinations", point.destinations)
                .with("sources", point.sources)
                .with("edge_count", point.edge_count)
                .with("routing_ns", JsonValue::float(point.routing_ns, 0))
                .with("intern_ns", JsonValue::float(point.intern_ns, 0))
                .with("problems_ns", JsonValue::float(point.problems_ns, 0))
                .with("solve_ns", JsonValue::float(point.solve_ns, 0))
                .with("frontend_ns", JsonValue::float(point.frontend_ns, 0))
                .with("routing_slab_bytes", point.routing_slab_bytes)
                .with("topo_slab_bytes", point.topo_slab_bytes)
                .with("forest_digest", format!("0x{:016x}", point.digest)),
        );
        smoke_point = Some(point);
    }

    if smoke {
        let point = smoke_point.expect("smoke point ran");
        println!(
            "smoke_builds_per_sec={:.2}",
            1e9 / point.frontend_ns.max(1.0)
        );
        println!("smoke_forest_digest=0x{:016x}", point.digest);
        return;
    }

    let report = bench_report("plan_frontend_scale", "scaled_series_uniform")
        .with("sources_per_destination", 20usize)
        .with("seed", SEED)
        .with("sizes", JsonValue::Array(rows));
    m2m_bench::report::write_report(&out_path, &report);
    if let Some(path) = telemetry::export_if_requested() {
        m2m_log!(Level::Info, "exported telemetry snapshot to {path}");
    }
}
