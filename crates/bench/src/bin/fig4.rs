//! Figure 4: varying the number of sources per aggregation function.
//!
//! 68-node Great Duck Island layout, 20% of nodes as destinations,
//! 5–40 sources per destination, dispersion d = 0.9. Series: Optimal,
//! Multicast, Aggregation, Flood; average round energy (mJ).

fn main() {
    m2m_bench::figures::figure4_data().print_csv();
}
