//! Figure 6: increasing network size.
//!
//! Five networks of 50–250 nodes with area scaled to keep density
//! constant; 25% of nodes are destinations, each aggregating 15% of all
//! nodes as sources (drawn uniformly). Series: Optimal, Multicast,
//! Aggregation; average round energy (mJ). (Flood is omitted — the paper
//! notes it is over an order of magnitude more costly here.)

fn main() {
    m2m_bench::figures::figure6_data().print_csv();
}
