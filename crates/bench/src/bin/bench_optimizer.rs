//! Machine-readable optimizer benchmark.
//!
//! Builds the global plan for the largest scaled-series deployment
//! (Figure 6's 250-node point) at several worker counts, verifies that
//! every parallel build is bit-identical to the serial one, and writes
//! the medians to `BENCH_optimizer.json` so regressions are diffable in
//! CI and across machines. Also measures the Corollary-1 memoized
//! rebuild ([`m2m_core::memo::SolveCache`]) and, after the timed phases,
//! replays the workload with tracing enabled to embed a telemetry
//! counter snapshot (solves, max-flow work, memo hit rate) into the
//! artifact.
//!
//! Usage: `cargo run --release -p m2m-bench --bin bench_optimizer \
//!         [output.json] [samples] [--nodes 1000,10000,100000]`
//!
//! `--nodes` sweeps the thread-scaling build phase over a comma list of
//! deployment sizes (Figure 6's scaled series, default `250`), appending
//! one entry per size to a `sweep` array. The deep-dive sections
//! (memoized rebuild, dense-core breakdown, maintainer update,
//! telemetry) always run on the first size, so the default artifact
//! shape is unchanged. Large sweeps should lower `samples` accordingly.

use m2m_bench::report::{bench_report, median_ns, telemetry_section, time_ns, JsonValue};
use m2m_core::dynamics::{PlanMaintainer, WorkloadUpdate};
use m2m_core::edge_opt::build_edge_problems;
use m2m_core::memo::SolveCache;
use m2m_core::plan::GlobalPlan;
use m2m_core::telemetry::Level;
use m2m_core::topo::Topology;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_core::{m2m_log, telemetry};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One scaled-series deployment with its workload and routing tables.
struct Instance {
    network: Network,
    spec: m2m_core::spec::AggregationSpec,
    routing: RoutingTables,
}

fn instance(size: usize) -> Instance {
    let deployment = Deployment::scaled_series(&[size], 7).remove(0);
    let network = Network::with_default_energy(deployment);
    let n = network.node_count();
    // Cap destination count at scale, matching `bench_scale`: beyond 10k
    // nodes the workload keeps 250 destinations so spec size doesn't
    // drown the front-end measurement.
    let dests = if n <= 10_000 { (n / 4).max(4) } else { 250 };
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(dests, 20, 7));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    Instance {
        network,
        spec,
        routing,
    }
}

/// Thread-scaling build medians for one instance, verifying every
/// parallel build bit-identical to the serial reference. Returns the
/// per-thread-count JSON entries, the serial median, and the reference.
fn thread_sweep(inst: &Instance, samples: usize) -> (Vec<JsonValue>, f64, GlobalPlan) {
    let reference = GlobalPlan::build_with_threads(&inst.network, &inst.spec, &inst.routing, 1);
    let mut builds = Vec::new();
    let mut serial_median = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut plan = None;
            times.push(time_ns(|| {
                plan = Some(GlobalPlan::build_with_threads(
                    &inst.network,
                    &inst.spec,
                    &inst.routing,
                    threads,
                ));
            }));
            assert_eq!(
                plan.expect("built").solutions(),
                reference.solutions(),
                "parallel build diverged at {threads} threads"
            );
        }
        let med = median_ns(&mut times);
        if threads == 1 {
            serial_median = med;
        }
        let speedup = serial_median / med;
        m2m_log!(
            Level::Info,
            "threads {threads}: median {:.2} ms (speedup {speedup:.2}x)",
            med / 1e6
        );
        builds.push(
            JsonValue::object()
                .with("threads", threads)
                .with("median_ns", JsonValue::float(med, 0))
                .with("speedup_vs_serial", JsonValue::float(speedup, 3)),
        );
    }
    (builds, serial_median, reference)
}

fn main() {
    telemetry::init_logging(Level::Info);
    let cli = m2m_bench::report::BenchCli::parse("BENCH_optimizer.json");
    let out_path = cli.out_path;
    let samples: usize = cli.count.unwrap_or(11);
    let mut sizes = cli.nodes;
    if sizes.is_empty() {
        sizes.push(250);
    }

    let mut sweep = Vec::new();
    let mut first: Option<(Instance, Vec<JsonValue>, f64, GlobalPlan)> = None;
    for &size in &sizes {
        let inst = instance(size);
        let n = inst.network.node_count();
        let edge_count = inst.routing.directed_edges().len();
        m2m_log!(
            Level::Info,
            "deployment: {n} nodes, {} destinations, {edge_count} directed edges",
            inst.spec.destinations().count()
        );
        let (builds, serial_median, reference) = thread_sweep(&inst, samples);
        sweep.push(
            JsonValue::object()
                .with("nodes", n)
                .with("destinations", inst.spec.destinations().count())
                .with("edge_count", reference.problems().len())
                .with("serial_median_ns", JsonValue::float(serial_median, 0))
                .with("builds", JsonValue::Array(builds.clone())),
        );
        if first.is_none() {
            first = Some((inst, builds, serial_median, reference));
        }
    }
    let (inst, builds, serial_median, reference) = first.expect("at least one size");
    let Instance {
        network,
        spec,
        routing,
    } = inst;
    let n = network.node_count();
    let edge_count = reference.problems().len();

    // Memoized rebuild: first build fills the cache, rebuilds are hits.
    let mut cache = SolveCache::new();
    let warm_plan = GlobalPlan::build_cached(&network, &spec, &routing, &mut cache);
    assert_eq!(warm_plan.solutions(), reference.solutions());
    let mut warm_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut plan = None;
        warm_times.push(time_ns(|| {
            plan = Some(GlobalPlan::build_cached(
                &network, &spec, &routing, &mut cache,
            ));
        }));
        assert_eq!(plan.expect("built").solutions(), reference.solutions());
    }
    let warm_median = median_ns(&mut warm_times);
    m2m_log!(
        Level::Info,
        "memoized rebuild: median {:.2} ms ({} hits / {} misses)",
        warm_median / 1e6,
        cache.hits(),
        cache.misses()
    );

    // Instrumented replay, outside the timed phases: one cold build and
    // one memoized rebuild with every counter live, so the artifact
    // records how much work the numbers above actually represent.
    let telemetry = telemetry_section(|| {
        let mut cache = SolveCache::new();
        let cold = GlobalPlan::build_cached(&network, &spec, &routing, &mut cache);
        let warm = GlobalPlan::build_cached(&network, &spec, &routing, &mut cache);
        assert_eq!(cold.solutions(), warm.solutions());
    });

    // Dense-core section (schema v2, additive): how much of a build is
    // topology interning + problem construction, how big the interned
    // slabs are, and how local a one-pair maintainer update stays
    // (dirty-edge counts from the Corollary-1 diff).
    let mut intern_times: Vec<f64> = Vec::with_capacity(samples);
    let mut last_edges = 0usize;
    for _ in 0..samples {
        intern_times.push(time_ns(|| {
            let topo = Topology::snapshot(&spec, &routing);
            last_edges = build_edge_problems(&topo).len();
        }));
    }
    assert_eq!(last_edges, edge_count);
    let intern_median = median_ns(&mut intern_times);
    let topo = reference.topology();
    let dest_paths: usize = topo.trees().iter().map(|t| t.dest_paths().len()).sum();

    let mut maintainer = PlanMaintainer::new(
        network.clone(),
        spec.clone(),
        RoutingMode::ShortestPathTrees,
    );
    let d = maintainer
        .spec()
        .destinations()
        .next()
        .expect("destination");
    let s = maintainer
        .spec()
        .all_sources()
        .into_iter()
        .find(|&s| !maintainer.spec().is_source_of(s, d) && s != d)
        .expect("addable source");
    let stats = maintainer.apply(WorkloadUpdate::AddSource {
        destination: d,
        source: s,
        weight: 1.0,
    });
    m2m_log!(
        Level::Info,
        "dense core: intern median {:.2} ms, one-pair update dirtied {}/{} edges",
        intern_median / 1e6,
        stats.edges_reoptimized,
        stats.edges_total()
    );

    let scenario = if sizes == [250] {
        "scaled_series_250".to_string()
    } else {
        format!(
            "scaled_series_{}",
            sizes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("_")
        )
    };
    let report = bench_report("plan_build", &scenario)
        .with("nodes", n)
        .with("destinations", spec.destinations().count())
        .with("edge_count", edge_count)
        .with("samples", samples)
        .with("builds", JsonValue::Array(builds))
        .with("sweep", JsonValue::Array(sweep))
        .with(
            "memoized_rebuild",
            JsonValue::object()
                .with("median_ns", JsonValue::float(warm_median, 0))
                .with("hits", cache.hits())
                .with("misses", cache.misses()),
        )
        .with(
            "dense_core",
            JsonValue::object()
                .with("intern_median_ns", JsonValue::float(intern_median, 0))
                .with("plan_build_median_ns", JsonValue::float(serial_median, 0))
                .with(
                    "slab_sizes",
                    JsonValue::object()
                        .with("nodes", topo.nodes().len())
                        .with("edges", topo.edge_count())
                        .with("trees", topo.trees().len())
                        .with("dest_paths", dest_paths),
                )
                .with(
                    "maintainer_update",
                    JsonValue::object()
                        .with("dirty_edges", stats.edges_reoptimized)
                        .with("reused_edges", stats.edges_reused)
                        .with("added_or_removed_edges", stats.edges_added_or_removed)
                        .with(
                            "reuse_fraction",
                            JsonValue::float(stats.reuse_fraction(), 3),
                        ),
                ),
        )
        .with("telemetry", telemetry);
    m2m_bench::report::write_report(&out_path, &report);
    if let Some(path) = telemetry::export_if_requested() {
        m2m_log!(Level::Info, "exported telemetry snapshot to {path}");
    }
}
