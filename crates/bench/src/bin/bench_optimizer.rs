//! Machine-readable optimizer benchmark.
//!
//! Builds the global plan for the largest scaled-series deployment
//! (Figure 6's 250-node point) at several worker counts, verifies that
//! every parallel build is bit-identical to the serial one, and writes
//! the medians to `BENCH_optimizer.json` so regressions are diffable in
//! CI and across machines. Also measures the Corollary-1 memoized
//! rebuild ([`m2m_core::memo::SolveCache`]).
//!
//! Usage: `cargo run --release -p m2m-bench --bin bench_optimizer \
//!         [output.json] [samples]`

use std::time::Instant;

use m2m_core::memo::SolveCache;
use m2m_core::plan::GlobalPlan;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn median_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_optimizer.json".to_string());
    let samples: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    let deployment = Deployment::scaled_series(&[250], 7).remove(0);
    let network = Network::with_default_energy(deployment);
    let n = network.node_count();
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(n / 4, 20, 7));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );

    let reference = GlobalPlan::build_with_threads(&network, &spec, &routing, 1);
    let edge_count = reference.problems().len();
    eprintln!(
        "deployment: {n} nodes, {} destinations, {edge_count} solved edges",
        spec.destinations().count()
    );

    let mut rows = Vec::new();
    let mut serial_median = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            let plan = GlobalPlan::build_with_threads(&network, &spec, &routing, threads);
            times.push(t0.elapsed().as_secs_f64() * 1e9);
            assert_eq!(
                plan.solutions(),
                reference.solutions(),
                "parallel build diverged at {threads} threads"
            );
        }
        let med = median_ns(&mut times);
        if threads == 1 {
            serial_median = med;
        }
        let speedup = serial_median / med;
        eprintln!("threads {threads}: median {:.2} ms (speedup {speedup:.2}x)", med / 1e6);
        rows.push(format!(
            "    {{ \"threads\": {threads}, \"median_ns\": {med:.0}, \"speedup_vs_serial\": {speedup:.3} }}"
        ));
    }

    // Memoized rebuild: first build fills the cache, rebuilds are hits.
    let mut cache = SolveCache::new();
    let warm_plan = GlobalPlan::build_cached(&network, &spec, &routing, &mut cache);
    assert_eq!(warm_plan.solutions(), reference.solutions());
    let mut warm_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let plan = GlobalPlan::build_cached(&network, &spec, &routing, &mut cache);
        warm_times.push(t0.elapsed().as_secs_f64() * 1e9);
        assert_eq!(plan.solutions(), reference.solutions());
    }
    let warm_median = median_ns(&mut warm_times);
    eprintln!(
        "memoized rebuild: median {:.2} ms ({} hits / {} misses)",
        warm_median / 1e6,
        cache.hits(),
        cache.misses()
    );

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"benchmark\": \"plan_build\",\n  \"deployment\": \"scaled_series_250\",\n  \
         \"nodes\": {n},\n  \"destinations\": {dests},\n  \"edge_count\": {edge_count},\n  \
         \"samples\": {samples},\n  \"available_parallelism\": {parallelism},\n  \
         \"builds\": [\n{rows}\n  ],\n  \
         \"memoized_rebuild\": {{ \"median_ns\": {warm_median:.0}, \"hits\": {hits}, \"misses\": {misses} }}\n}}\n",
        dests = spec.destinations().count(),
        rows = rows.join(",\n"),
        hits = cache.hits(),
        misses = cache.misses(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
