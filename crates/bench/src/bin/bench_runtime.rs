//! Machine-readable round-execution benchmark.
//!
//! Compares the naive per-round path ([`m2m_core::runtime::execute_round`],
//! which rebuilds the schedule every round) against the compiled executor
//! ([`m2m_core::exec::CompiledSchedule`], built once and run over flat
//! arrays) on the largest scaled-series deployment (Figure 6's 250-node
//! point). Verifies bit-exact agreement before timing anything, sweeps
//! the epoch driver over several thread counts, and writes the medians
//! to `BENCH_runtime.json` so regressions are diffable in CI and across
//! machines.
//!
//! Usage: `cargo run --release -p m2m-bench --bin bench_runtime \
//!         [--smoke] [output.json] [samples]`
//!
//! `--smoke` runs a handful of samples and exits non-zero if the
//! compiled path is not at least as fast as the naive one — the cheap
//! regression gate wired into `scripts/verify.sh`.

use std::collections::BTreeMap;
use std::time::Instant;

use m2m_core::exec::{run_epochs, CompiledSchedule, ExecState};
use m2m_core::plan::GlobalPlan;
use m2m_core::runtime::execute_round;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn median_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Deterministic synthetic reading for `(source, round)` — no RNG so the
/// benchmark is reproducible byte-for-byte across runs and machines.
fn reading(source: NodeId, round: usize) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    (s * 0.37 + r * 1.13).sin() * 50.0 + s * 0.01
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());
    let samples: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 3 } else { 9 });
    // The naive path rebuilds the schedule every round, so one sample is
    // one round; the compiled path is so much faster that a sample times
    // a whole batch of rounds to stay above clock resolution.
    let compiled_batch: usize = if smoke { 64 } else { 512 };

    let deployment = Deployment::scaled_series(&[250], 7).remove(0);
    let network = Network::with_default_energy(deployment);
    let n = network.node_count();
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(n / 4, 20, 7));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);

    let compiled =
        CompiledSchedule::compile(&network, &spec, &routing, &plan).expect("schedulable plan");
    let mut state = ExecState::for_schedule(&compiled);

    // Correctness first: the compiled path must be bit-identical to the
    // reference executor before any of its timings mean anything.
    let probe: BTreeMap<NodeId, f64> = compiled
        .sources()
        .ids()
        .iter()
        .map(|&s| (s, reading(s, 0)))
        .collect();
    let reference = execute_round(&network, &spec, &routing, &plan, &probe);
    let cost = compiled.run_round_on(&probe, &mut state);
    assert_eq!(state.result_map(&compiled), reference.results);
    assert_eq!(cost, reference.cost);

    eprintln!(
        "deployment: {n} nodes, {} destinations, {} sources, {} schedule units",
        spec.destinations().count(),
        compiled.sources().len(),
        compiled.schedule().units.len(),
    );

    // Naive: schedule rebuilt from the plan on every round.
    let mut naive_times: Vec<f64> = Vec::with_capacity(samples);
    for round in 0..samples {
        let readings: BTreeMap<NodeId, f64> = compiled
            .sources()
            .ids()
            .iter()
            .map(|&s| (s, reading(s, round)))
            .collect();
        let t0 = Instant::now();
        let result = execute_round(&network, &spec, &routing, &plan, &readings);
        naive_times.push(t0.elapsed().as_secs_f64() * 1e9);
        assert!(result.cost.total_uj() > 0.0);
    }
    let naive_ns = median_ns(&mut naive_times);
    let naive_rps = 1e9 / naive_ns;
    eprintln!("naive execute_round: {naive_ns:.0} ns/round ({naive_rps:.1} rounds/sec)");

    // Compiled, single state, serial: the per-round hot path.
    let batch: Vec<Vec<f64>> = (0..compiled_batch)
        .map(|round| {
            compiled
                .sources()
                .ids()
                .iter()
                .map(|&s| reading(s, round))
                .collect()
        })
        .collect();
    let mut compiled_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for row in &batch {
            state.readings_mut().copy_from_slice(row);
            compiled.run_round(&mut state);
        }
        compiled_times.push(t0.elapsed().as_secs_f64() * 1e9 / compiled_batch as f64);
    }
    let compiled_ns = median_ns(&mut compiled_times);
    let compiled_rps = 1e9 / compiled_ns;
    let speedup = naive_ns / compiled_ns;
    eprintln!(
        "compiled run_round: {compiled_ns:.0} ns/round ({compiled_rps:.1} rounds/sec, \
         {speedup:.1}x vs naive)"
    );

    // Epoch driver at several worker counts. The serial outcome is the
    // reference: every thread count must reproduce it exactly.
    let serial_outcomes = run_epochs(&compiled, &batch, 1);
    let mut thread_rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            let outcomes = run_epochs(&compiled, &batch, threads);
            times.push(t0.elapsed().as_secs_f64() * 1e9 / compiled_batch as f64);
            assert_eq!(outcomes, serial_outcomes, "divergence at {threads} threads");
        }
        let med = median_ns(&mut times);
        let rps = 1e9 / med;
        eprintln!(
            "run_epochs threads {threads}: {med:.0} ns/round ({rps:.1} rounds/sec, \
             {:.1}x vs naive)",
            naive_ns / med
        );
        thread_rows.push(format!(
            "    {{ \"threads\": {threads}, \"median_ns_per_round\": {med:.0}, \
             \"rounds_per_sec\": {rps:.1}, \"speedup_vs_naive\": {:.3} }}",
            naive_ns / med
        ));
    }

    if smoke {
        assert!(
            compiled_ns <= naive_ns,
            "regression: compiled path ({compiled_ns:.0} ns/round) slower than naive \
             execute_round ({naive_ns:.0} ns/round)"
        );
        eprintln!("smoke: compiled path is {speedup:.1}x the naive path — OK");
        return;
    }

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"benchmark\": \"round_execution\",\n  \"deployment\": \"scaled_series_250\",\n  \
         \"nodes\": {n},\n  \"destinations\": {dests},\n  \"sources\": {sources},\n  \
         \"schedule_units\": {units},\n  \"samples\": {samples},\n  \
         \"rounds_per_sample\": {compiled_batch},\n  \
         \"available_parallelism\": {parallelism},\n  \
         \"naive\": {{ \"median_ns_per_round\": {naive_ns:.0}, \"rounds_per_sec\": {naive_rps:.1} }},\n  \
         \"compiled\": {{ \"median_ns_per_round\": {compiled_ns:.0}, \"rounds_per_sec\": {compiled_rps:.1}, \
         \"speedup_vs_naive\": {speedup:.3} }},\n  \
         \"epochs\": [\n{rows}\n  ]\n}}\n",
        dests = spec.destinations().count(),
        sources = compiled.sources().len(),
        units = compiled.schedule().units.len(),
        rows = thread_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
