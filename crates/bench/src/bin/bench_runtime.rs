//! Machine-readable round-execution benchmark.
//!
//! Compares the naive per-round path ([`m2m_core::runtime::execute_round`],
//! which rebuilds the schedule every round) against the compiled executor
//! ([`m2m_core::exec::CompiledSchedule`], built once and run over flat
//! arrays) on the largest scaled-series deployment (Figure 6's 250-node
//! point). Verifies bit-exact agreement before timing anything, sweeps
//! the epoch driver over several thread counts, writes the medians to
//! `BENCH_runtime.json` so regressions are diffable in CI and across
//! machines, and then replays the workload with tracing enabled so the
//! artifact embeds a telemetry counter snapshot (solves, memo hit rate,
//! recompiles vs refreshes, per-phase wall time).
//!
//! The schema-v2 artifact also carries a **lane-width sweep**: the
//! scalar `run_round` loop against `run_rounds_batched` at every
//! supported width (W = 1/4/8/16), each verified bit-identical to the
//! scalar path before it is timed, plus the chunked epoch fan-out
//! ([`m2m_core::exec::run_epochs_slab`]) across several thread counts.
//!
//! Usage: `cargo run --release -p m2m-bench --bin bench_runtime \
//!         [--smoke] [--nodes N] [output.json] [samples]`
//!
//! `--nodes N` sizes the scaled-series deployment (default 250, the
//! Figure 6 point; EXPERIMENTS.md tabulates 50/250/1000).
//!
//! `--smoke` runs a handful of samples and exits non-zero if the
//! compiled path is not at least as fast as the naive one — the cheap
//! regression gate wired into `scripts/verify.sh`. Smoke mode also
//! prints machine-readable `smoke_*` lines on stdout: a digest folding
//! every epoch result and round cost (so the verify gate can assert that
//! a traced run computes bit-identical numbers to an untraced one), an
//! in-process tracing-off vs tracing-on timing of the compiled hot
//! path (so the gate can bound instrumentation overhead without
//! cross-process timing noise), and `smoke_batched_speedup=` — the
//! lane-batched path's rounds/sec over the *same-run* naive baseline, a
//! machine-independent ratio verify.sh holds a floor against.

use std::collections::BTreeMap;

use m2m_bench::report::{bench_report, median_ns, telemetry_section, time_ns, JsonValue};
use m2m_core::exec::{
    run_epochs, run_epochs_slab, CompiledSchedule, EpochDriver, EpochOutcome, ExecState,
    DEFAULT_LANE_WIDTH, SUPPORTED_LANE_WIDTHS,
};
use m2m_core::memo::SolveCache;
use m2m_core::plan::GlobalPlan;
use m2m_core::runtime::execute_round;
use m2m_core::telemetry::Level;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_core::{dynamics::WorkloadUpdate, m2m_log, telemetry};
use m2m_graph::NodeId;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic synthetic reading for `(source, round)` — no RNG so the
/// benchmark is reproducible byte-for-byte across runs and machines.
fn reading(source: NodeId, round: usize) -> f64 {
    let s = source.index() as f64;
    let r = round as f64;
    (s * 0.37 + r * 1.13).sin() * 50.0 + s * 0.01
}

/// FNV-1a over the bit patterns of every result and cost field, so two
/// runs agree on the digest iff they computed bit-identical outcomes.
fn digest_outcomes(outcomes: &[EpochOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for outcome in outcomes {
        for &r in &outcome.results {
            fold(r.to_bits());
        }
        fold(outcome.cost.tx_uj.to_bits());
        fold(outcome.cost.rx_uj.to_bits());
        fold(outcome.cost.messages as u64);
        fold(outcome.cost.units as u64);
        fold(outcome.cost.payload_bytes);
    }
    h
}

fn main() {
    telemetry::init_logging(Level::Info);
    let cli = m2m_bench::report::BenchCli::parse("BENCH_runtime.json");
    let smoke = cli.smoke;
    let node_count: usize = cli.nodes.first().copied().unwrap_or(250);
    let out_path = cli.out_path;
    let samples: usize = cli.count.unwrap_or(if smoke { 5 } else { 9 });
    // The naive path rebuilds the schedule every round, so one sample is
    // one round; the compiled path is so much faster that a sample times
    // a whole batch of rounds to stay above clock resolution.
    let compiled_batch: usize = if smoke { 64 } else { 512 };

    let deployment = Deployment::scaled_series(&[node_count], 7).remove(0);
    let network = Network::with_default_energy(deployment);
    let n = network.node_count();
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(n / 4, 20, 7));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);

    let compiled = CompiledSchedule::compile(&network, &spec, &plan).expect("schedulable plan");
    let mut state = ExecState::for_schedule(&compiled);

    // Correctness first: the compiled path must be bit-identical to the
    // reference executor before any of its timings mean anything.
    let probe: BTreeMap<NodeId, f64> = compiled
        .sources()
        .ids()
        .iter()
        .map(|&s| (s, reading(s, 0)))
        .collect();
    let reference = execute_round(&network, &spec, &plan, &probe);
    let cost = compiled.run_round_on(&probe, &mut state);
    assert_eq!(state.result_map(&compiled), reference.results);
    assert_eq!(cost, reference.cost);

    m2m_log!(
        Level::Info,
        "deployment: {n} nodes, {} destinations, {} sources, {} schedule units",
        spec.destinations().count(),
        compiled.sources().len(),
        compiled.schedule().units.len(),
    );

    // Naive: schedule rebuilt from the plan on every round.
    let mut naive_times: Vec<f64> = Vec::with_capacity(samples);
    for round in 0..samples {
        let readings: BTreeMap<NodeId, f64> = compiled
            .sources()
            .ids()
            .iter()
            .map(|&s| (s, reading(s, round)))
            .collect();
        let mut result = None;
        naive_times.push(time_ns(|| {
            result = Some(execute_round(&network, &spec, &plan, &readings));
        }));
        assert!(result.expect("executed").cost.total_uj() > 0.0);
    }
    let naive_ns = median_ns(&mut naive_times);
    let naive_rps = 1e9 / naive_ns;
    m2m_log!(
        Level::Info,
        "naive execute_round: {naive_ns:.0} ns/round ({naive_rps:.1} rounds/sec)"
    );

    // Compiled, single state, serial: the per-round hot path.
    let batch: Vec<Vec<f64>> = (0..compiled_batch)
        .map(|round| {
            compiled
                .sources()
                .ids()
                .iter()
                .map(|&s| reading(s, round))
                .collect()
        })
        .collect();
    let run_batch = |state: &mut ExecState| {
        for row in &batch {
            state.readings_mut().copy_from_slice(row);
            compiled.run_round(state);
        }
    };
    let mut compiled_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        compiled_times.push(time_ns(|| run_batch(&mut state)) / compiled_batch as f64);
    }
    let compiled_ns = median_ns(&mut compiled_times);
    let compiled_rps = 1e9 / compiled_ns;
    let speedup = naive_ns / compiled_ns;
    m2m_log!(
        Level::Info,
        "compiled run_round: {compiled_ns:.0} ns/round ({compiled_rps:.1} rounds/sec, \
         {speedup:.1}x vs naive)"
    );

    // Lane-width sweep: `run_rounds_batched` at every supported width.
    // Each width is proven bit-identical to the scalar loop above before
    // a single timing sample is taken.
    let dests = compiled.destination_count();
    let mut expected: Vec<f64> = Vec::with_capacity(compiled_batch * dests);
    for row in &batch {
        state.readings_mut().copy_from_slice(row);
        compiled.run_round(&mut state);
        expected.extend_from_slice(state.results());
    }
    let expected_bits: Vec<u64> = expected.iter().map(|x| x.to_bits()).collect();
    let mut lane_rows = Vec::new();
    let mut batched_default_ns = compiled_ns;
    for width in SUPPORTED_LANE_WIDTHS {
        let mut lane_state = ExecState::batched(&compiled, width);
        let mut out = vec![0.0; compiled_batch * dests];
        compiled.run_rounds_batched(&batch, &mut lane_state, &mut out);
        let got: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            got, expected_bits,
            "lane width {width} diverged from scalar"
        );
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            times.push(
                time_ns(|| {
                    compiled.run_rounds_batched(&batch, &mut lane_state, &mut out);
                }) / compiled_batch as f64,
            );
        }
        let med = median_ns(&mut times);
        if width == DEFAULT_LANE_WIDTH {
            batched_default_ns = med;
        }
        let rps = 1e9 / med;
        m2m_log!(
            Level::Info,
            "batched W={width}: {med:.0} ns/round ({rps:.1} rounds/sec, \
             {:.2}x vs scalar, {:.1}x vs naive)",
            compiled_ns / med,
            naive_ns / med
        );
        lane_rows.push(
            JsonValue::object()
                .with("width", width)
                .with("median_ns_per_round", JsonValue::float(med, 0))
                .with("rounds_per_sec", JsonValue::float(rps, 1))
                .with("speedup_vs_scalar", JsonValue::float(compiled_ns / med, 3))
                .with("speedup_vs_naive", JsonValue::float(naive_ns / med, 3)),
        );
    }
    let batched_rps = 1e9 / batched_default_ns;
    let batched_speedup = naive_ns / batched_default_ns;

    // Epoch fan-out at several worker counts, batched at the default lane
    // width. The scalar loop's results are the reference: every thread
    // count must reproduce them bit-for-bit. `run_epochs` (the outcome
    // shape) stays the digest source so the smoke digest is comparable
    // across schema versions.
    let serial_outcomes = run_epochs(&compiled, &batch, 1);
    let mut epoch_rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut slab = None;
            times.push(
                time_ns(|| {
                    slab = Some(run_epochs_slab(
                        &compiled,
                        &batch,
                        DEFAULT_LANE_WIDTH,
                        threads,
                    ));
                }) / compiled_batch as f64,
            );
            let slab = slab.expect("ran");
            let got: Vec<u64> = slab.results().iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, expected_bits, "divergence at {threads} threads");
            assert_eq!(slab.cost(), compiled.round_cost());
        }
        let med = median_ns(&mut times);
        let rps = 1e9 / med;
        m2m_log!(
            Level::Info,
            "run_epochs_slab threads {threads}: {med:.0} ns/round ({rps:.1} rounds/sec, \
             {:.1}x vs naive)",
            naive_ns / med
        );
        epoch_rows.push(
            JsonValue::object()
                .with("threads", threads)
                .with("lane_width", DEFAULT_LANE_WIDTH)
                .with("median_ns_per_round", JsonValue::float(med, 0))
                .with("rounds_per_sec", JsonValue::float(rps, 1))
                .with("speedup_vs_naive", JsonValue::float(naive_ns / med, 3)),
        );
    }

    if smoke {
        assert!(
            compiled_ns <= naive_ns,
            "regression: compiled path ({compiled_ns:.0} ns/round) slower than naive \
             execute_round ({naive_ns:.0} ns/round)"
        );
        assert!(
            batched_default_ns <= naive_ns,
            "regression: batched path ({batched_default_ns:.0} ns/round) slower than naive \
             execute_round ({naive_ns:.0} ns/round)"
        );

        // Tracing on must compute the exact same numbers as tracing off.
        // Measure both states in the same process, interleaved, so the
        // comparison is immune to cross-process scheduling noise.
        // More probes than timing samples: the min estimator converges
        // with probe count, and the cross-process drift gate in verify.sh
        // needs the two processes' minima to agree within ~2%.
        let was_enabled = telemetry::enabled();
        let probes = samples.max(25);
        let mut off_times: Vec<f64> = Vec::with_capacity(probes);
        let mut on_times: Vec<f64> = Vec::with_capacity(probes);
        for _ in 0..probes {
            telemetry::set_enabled(false);
            off_times.push(time_ns(|| run_batch(&mut state)) / compiled_batch as f64);
            telemetry::set_enabled(true);
            on_times.push(time_ns(|| run_batch(&mut state)) / compiled_batch as f64);
        }
        telemetry::set_enabled(false);
        let traced_off = run_epochs(&compiled, &batch, 2);
        telemetry::set_enabled(true);
        let traced_on = run_epochs(&compiled, &batch, 2);
        telemetry::set_enabled(was_enabled);
        assert_eq!(traced_off, serial_outcomes, "tracing-off run diverged");
        assert_eq!(traced_on, serial_outcomes, "tracing-on run diverged");

        // Minimum over the probes: the most repeatable estimator of the
        // loop's true cost (every slower sample is the same code plus
        // scheduler interference), so two processes gating on
        // `smoke_disabled_ns` agree far more tightly than medians would.
        let off_ns = off_times.iter().copied().fold(f64::INFINITY, f64::min);
        let on_ns = on_times.iter().copied().fold(f64::INFINITY, f64::min);
        let overhead_pct = (on_ns - off_ns) / off_ns * 100.0;
        // Machine-readable lines for scripts/verify.sh. The digest folds
        // every epoch result and cost computed above under the ambient
        // M2M_TRACE state, so runs with different trace settings must
        // print the same digest.
        println!("smoke_digest=0x{:016x}", digest_outcomes(&serial_outcomes));
        println!("smoke_disabled_ns={off_ns:.1}");
        println!("smoke_enabled_ns={on_ns:.1}");
        println!("smoke_overhead_pct={overhead_pct:.2}");
        // Same-run ratio of the lane-batched hot path over the naive
        // interpreter — machine-independent, so verify.sh can hold an
        // absolute floor against it on any hardware.
        println!("smoke_batched_speedup={batched_speedup:.1}");
        m2m_log!(
            Level::Info,
            "smoke: compiled path is {speedup:.1}x the naive path (batched W={DEFAULT_LANE_WIDTH}: \
             {batched_speedup:.1}x), tracing overhead \
             {overhead_pct:.2}% ({off_ns:.0} ns off / {on_ns:.0} ns on) — OK"
        );
        if let Some(path) = telemetry::export_if_requested() {
            m2m_log!(Level::Info, "exported telemetry snapshot to {path}");
        }
        return;
    }

    // Instrumented replay, outside the timed phases: a memoized plan
    // build, a compile, an epoch batch, and one refresh plus one
    // recompile through the epoch driver, so the artifact records the
    // optimizer/executor work behind the timings above.
    let telemetry_json = telemetry_section(|| {
        let mut cache = SolveCache::new();
        let cold = GlobalPlan::build_cached(&network, &spec, &routing, &mut cache);
        let warm = GlobalPlan::build_cached(&network, &spec, &routing, &mut cache);
        assert_eq!(cold.solutions(), warm.solutions());
        let traced = CompiledSchedule::compile(&network, &spec, &warm).expect("schedulable plan");
        let outcomes = run_epochs(&traced, &batch, 2);
        assert_eq!(outcomes, serial_outcomes, "traced replay diverged");

        let mut driver = EpochDriver::new(
            network.clone(),
            spec.clone(),
            RoutingMode::ShortestPathTrees,
        );
        let (dest, source, weight) = spec
            .functions()
            .flat_map(|(d, f)| {
                f.sources()
                    .map(move |s| (d, s, f.weight(s).expect("weighted")))
            })
            .next()
            .expect("workload has at least one pair");
        driver.apply(WorkloadUpdate::AddSource {
            destination: dest,
            source,
            weight: weight * 1.5,
        });
        driver.apply(WorkloadUpdate::RemoveSource {
            destination: dest,
            source,
        });
        assert!(driver.refreshes() >= 1, "reweight should refresh in place");
        assert!(driver.recompiles() >= 1, "source removal should recompile");
    });

    let report = bench_report("round_execution", &format!("scaled_series_{n}"))
        .with("nodes", n)
        .with("destinations", spec.destinations().count())
        .with("sources", compiled.sources().len())
        .with("schedule_units", compiled.schedule().units.len())
        .with("samples", samples)
        .with("rounds_per_sample", compiled_batch)
        .with(
            "naive",
            JsonValue::object()
                .with("median_ns_per_round", JsonValue::float(naive_ns, 0))
                .with("rounds_per_sec", JsonValue::float(naive_rps, 1)),
        )
        .with(
            "compiled",
            JsonValue::object()
                .with("median_ns_per_round", JsonValue::float(compiled_ns, 0))
                .with("rounds_per_sec", JsonValue::float(compiled_rps, 1))
                .with("speedup_vs_naive", JsonValue::float(speedup, 3)),
        )
        .with(
            "batched",
            JsonValue::object()
                .with("lane_width", DEFAULT_LANE_WIDTH)
                .with(
                    "median_ns_per_round",
                    JsonValue::float(batched_default_ns, 0),
                )
                .with("rounds_per_sec", JsonValue::float(batched_rps, 1))
                .with(
                    "speedup_vs_scalar",
                    JsonValue::float(compiled_ns / batched_default_ns, 3),
                )
                .with("speedup_vs_naive", JsonValue::float(batched_speedup, 3)),
        )
        .with("lane_widths", JsonValue::Array(lane_rows))
        .with("epochs", JsonValue::Array(epoch_rows))
        .with("telemetry", telemetry_json);
    m2m_bench::report::write_report(&out_path, &report);
    if let Some(path) = telemetry::export_if_requested() {
        m2m_log!(Level::Info, "exported telemetry snapshot to {path}");
    }
}
