//! Minimal dependency-free SVG line charts for the figure harnesses.
//!
//! Each paper figure is a handful of series over a shared x-axis; this
//! renderer turns them into a self-contained `.svg` with axes, ticks,
//! legend, and per-series polylines — enough to eyeball the reproduction
//! against the paper's plots without any plotting stack.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// Chart-level options.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Title rendered above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
/// A small categorical palette (dark, print-friendly).
const COLORS: [&str; 6] = [
    "#1b6ca8", "#c0392b", "#1e8449", "#8e44ad", "#b9770e", "#424949",
];

impl Chart {
    /// Renders the chart to an SVG document string.
    ///
    /// # Panics
    /// Panics if no series or all series are empty.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        assert!(!all.is_empty(), "chart needs at least one point");
        let (mut x0, mut x1) = min_max(all.iter().map(|p| p.0));
        let (mut y0, mut y1) = min_max(all.iter().map(|p| p.1));
        if x0 == x1 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        // Anchor the y-axis at zero when the data allows it (energy plots).
        if y0 > 0.0 {
            y0 = 0.0;
        }
        if y0 == y1 {
            y1 += 1.0;
        }
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = move |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let sy = move |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0) * plot_h;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(
            out,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="15">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );

        // Axes.
        let _ = writeln!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h,
            MARGIN_L + plot_w,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h
        );
        // Ticks (5 per axis).
        for i in 0..=5 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 5.0;
            let fy = y0 + (y1 - y0) * f64::from(i) / 5.0;
            let px = sx(fx);
            let py = sy(fy);
            let _ = writeln!(
                out,
                r#"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="black"/><text x="{px}" y="{}" text-anchor="middle">{}</text>"#,
                MARGIN_T + plot_h,
                MARGIN_T + plot_h + 5.0,
                MARGIN_T + plot_h + 20.0,
                tick(fx)
            );
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{py}" x2="{MARGIN_L}" y2="{py}" stroke="black"/><text x="{}" y="{}" text-anchor="end">{}</text>"#,
                MARGIN_L - 5.0,
                MARGIN_L - 9.0,
                py + 4.0,
                tick(fy)
            );
        }
        // Axis labels.
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series polylines + legend.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let _ = writeln!(
                out,
                r#"<polyline fill="none" stroke="{color}" stroke-width="2" points="{}"/>"#,
                pts.join(" ")
            );
            for &(x, y) in &s.points {
                let _ = writeln!(
                    out,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            let ly = MARGIN_T + 18.0 * i as f64;
            let lx = WIDTH - MARGIN_R + 12.0;
            let _ = writeln!(
                out,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}">{}</text>"#,
                lx + 22.0,
                lx + 28.0,
                ly + 4.0,
                escape(&s.label)
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

fn tick(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart {
            title: "Figure X".into(),
            x_label: "destinations".into(),
            y_label: "energy (mJ)".into(),
            series: vec![
                Series {
                    label: "Optimal".into(),
                    points: vec![(10.0, 100.0), (20.0, 180.0), (30.0, 240.0)],
                },
                Series {
                    label: "Multicast".into(),
                    points: vec![(10.0, 130.0), (20.0, 220.0), (30.0, 310.0)],
                },
            ],
        }
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("Optimal"));
        assert!(svg.contains("energy (mJ)"));
        // Balanced tags (every element self-closed or closed).
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn points_land_inside_the_plot_area() {
        let svg = chart().render();
        for cap in svg.split("<circle cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!(
                (MARGIN_L..=WIDTH - MARGIN_R).contains(&x),
                "x={x} outside plot"
            );
        }
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = chart();
        c.title = "a < b & c".into();
        let svg = c.render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_chart_panics() {
        let c = Chart {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            series: vec![],
        };
        let _ = c.render();
    }

    #[test]
    fn degenerate_ranges_are_padded() {
        let c = Chart {
            title: "flat".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "s".into(),
                points: vec![(1.0, 5.0), (1.0, 5.0)],
            }],
        };
        let svg = c.render();
        assert!(svg.contains("<polyline"));
    }
}
