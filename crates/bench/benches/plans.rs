//! Criterion benchmarks at the plan level: per-algorithm plan + schedule
//! construction, the incremental-reoptimization ablation (Corollary 1:
//! incremental update vs full rebuild), and the suppression round loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use m2m_core::baselines::{plan_for_algorithm, Algorithm};
use m2m_core::dynamics::{PlanMaintainer, WorkloadUpdate};
use m2m_core::plan::GlobalPlan;
use m2m_core::schedule::build_schedule;
use m2m_core::suppression::{OverridePolicy, SuppressionSim};
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

fn setup() -> (Network, m2m_core::spec::AggregationSpec, RoutingTables) {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(14, 20, 3));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    (network, spec, routing)
}

fn bench_algorithms(c: &mut Criterion) {
    let (network, spec, routing) = setup();
    let mut group = c.benchmark_group("plan_and_schedule");
    group.sample_size(20);
    for alg in Algorithm::PLANNED {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| {
                let plan = plan_for_algorithm(&network, &spec, &routing, alg);
                black_box(build_schedule(&spec, &plan).unwrap())
            })
        });
    }
    group.finish();
}

/// Corollary 1 ablation: applying a one-source update incrementally vs
/// rebuilding the whole plan from scratch.
fn bench_incremental_update(c: &mut Criterion) {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(14, 20, 3));
    let d = spec.destinations().next().unwrap();
    let s = spec
        .all_sources()
        .into_iter()
        .find(|&s| !spec.is_source_of(s, d) && s != d)
        .unwrap();

    let mut group = c.benchmark_group("one_source_update");
    group.sample_size(20);
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut m = PlanMaintainer::new(
                network.clone(),
                spec.clone(),
                RoutingMode::ShortestPathTrees,
            );
            black_box(m.apply(WorkloadUpdate::AddSource {
                destination: d,
                source: s,
                weight: 1.0,
            }))
        })
    });
    group.bench_function("from_scratch", |b| {
        b.iter(|| {
            let mut updated = spec.clone();
            updated.function_mut(d).unwrap().set_weight(s, 1.0);
            let routing = RoutingTables::build(
                &network,
                &updated.source_to_destinations(),
                RoutingMode::ShortestPathTrees,
            );
            black_box(GlobalPlan::build(&network, &updated, &routing))
        })
    });
    group.finish();
}

fn bench_suppression_round(c: &mut Criterion) {
    let (network, spec, routing) = setup();
    let plan = GlobalPlan::build(&network, &spec, &routing);
    let sim = SuppressionSim::new(&network, &spec, &routing, &plan);
    let mut group = c.benchmark_group("suppression_rounds");
    for policy in [OverridePolicy::None, OverridePolicy::Aggressive] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| b.iter(|| black_box(sim.average_cost(&spec, 0.1, 10, policy, 42))),
        );
    }
    group.finish();
}

fn bench_slots_and_distributed_round(c: &mut Criterion) {
    use m2m_core::node_machine::run_distributed_round;
    use m2m_core::slots::assign_slots;
    use m2m_core::tables::NodeTables;
    use m2m_graph::NodeId;
    use std::collections::BTreeMap;

    let (network, spec, routing) = setup();
    let plan = GlobalPlan::build(&network, &spec, &routing);
    let schedule = build_schedule(&spec, &plan).unwrap();
    let tables = NodeTables::build(&spec, &plan);
    let readings: BTreeMap<NodeId, f64> = network.nodes().map(|v| (v, f64::from(v.0))).collect();

    let mut group = c.benchmark_group("runtime_kernels");
    group.sample_size(20);
    group.bench_function("assign_slots", |b| {
        b.iter(|| black_box(assign_slots(&network, &schedule)))
    });
    group.bench_function("distributed_round", |b| {
        b.iter(|| black_box(run_distributed_round(&spec, &tables, &readings).unwrap()))
    });
    group.bench_function("node_tables_build", |b| {
        b.iter(|| black_box(NodeTables::build(&spec, &plan)))
    });
    group.finish();
}

fn bench_steiner_routing(c: &mut Criterion) {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(14, 20, 3));
    let demands = spec.source_to_destinations();
    let mut group = c.benchmark_group("routing_modes");
    group.sample_size(20);
    for mode in [
        RoutingMode::ShortestPathTrees,
        RoutingMode::SteinerTrees,
        RoutingMode::SharedSpanningTree,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| b.iter(|| black_box(RoutingTables::build(&network, &demands, mode))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_incremental_update,
    bench_suppression_round,
    bench_slots_and_distributed_round,
    bench_steiner_routing
);
criterion_main!(benches);
