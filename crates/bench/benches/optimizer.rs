//! Criterion micro-benchmarks for the optimizer kernels: the weighted
//! bipartite vertex-cover solve (the paper's single-edge optimization),
//! full global plan construction on the Great Duck Island layout, and the
//! serial-vs-parallel thread sweep on the largest scaled-series
//! deployment (see also `src/bin/bench_optimizer.rs` for the
//! machine-readable variant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use m2m_core::memo::SolveCache;
use m2m_core::plan::GlobalPlan;
use m2m_core::workload::{generate_workload, WorkloadConfig};
use m2m_graph::bipartite::BipartiteGraph;
use m2m_graph::vertex_cover::min_weight_vertex_cover;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

/// A dense-ish bipartite instance of the kind single edges produce:
/// `n` sources × `n/2` destinations, ~40% of pairs related.
fn cover_instance(n: usize) -> BipartiteGraph {
    let mut g = BipartiteGraph::new();
    for i in 0..n {
        g.add_left(4 * (1 << 20) + i as u64);
    }
    let nd = (n / 2).max(1);
    for j in 0..nd {
        g.add_right(4 * (1 << 20) + 1000 + j as u64);
    }
    for i in 0..n {
        for j in 0..nd {
            if (i * 7 + j * 3) % 5 < 2 {
                g.add_edge(i, j);
            }
        }
    }
    g
}

fn bench_vertex_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_cover");
    for &n in &[8usize, 16, 32, 64] {
        let g = cover_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(min_weight_vertex_cover(g)))
        });
    }
    group.finish();
}

fn bench_global_plan(c: &mut Criterion) {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));
    let mut group = c.benchmark_group("global_plan_build");
    group.sample_size(20);
    for &(dests, sources) in &[(7usize, 10usize), (14, 20), (34, 20)] {
        let spec = generate_workload(&network, &WorkloadConfig::paper_default(dests, sources, 3));
        let routing = RoutingTables::build(
            &network,
            &spec.source_to_destinations(),
            RoutingMode::ShortestPathTrees,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dests}d_{sources}s")),
            &(&spec, &routing),
            |b, (spec, routing)| b.iter(|| black_box(GlobalPlan::build(&network, spec, routing))),
        );
    }
    group.finish();
}

/// Serial vs parallel plan builds on the largest scaled-series
/// deployment (Figure 6's 250-node point). The plans are bit-identical
/// at every thread count; only wall-clock may differ.
fn bench_parallel_build(c: &mut Criterion) {
    let deployment = Deployment::scaled_series(&[250], 7).remove(0);
    let network = Network::with_default_energy(deployment);
    let n = network.node_count();
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(n / 4, 20, 7));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let mut group = c.benchmark_group("plan_build_threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(GlobalPlan::build_with_threads(&network, &spec, &routing, t)))
        });
    }
    // Corollary-1 memo: every rebuild after the first is all cache hits.
    let mut cache = SolveCache::new();
    let _warm = GlobalPlan::build_cached(&network, &spec, &routing, &mut cache);
    group.bench_function("memoized_rebuild", |b| {
        b.iter(|| {
            black_box(GlobalPlan::build_cached(
                &network, &spec, &routing, &mut cache,
            ))
        })
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let network = Network::with_default_energy(Deployment::great_duck_island(1));
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(14, 20, 3));
    let demands = spec.source_to_destinations();
    let mut group = c.benchmark_group("routing_build");
    for mode in [
        RoutingMode::ShortestPathTrees,
        RoutingMode::SharedSpanningTree,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| b.iter(|| black_box(RoutingTables::build(&network, &demands, mode))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vertex_cover,
    bench_global_plan,
    bench_parallel_build,
    bench_routing
);
criterion_main!(benches);
