//! A minimal JSON emitter, shared by every artifact writer in the
//! workspace (telemetry snapshots, plan-explainability reports, the
//! committed `BENCH_*.json` benchmark files).
//!
//! The workspace bans external dependencies, so this is a small tree
//! model rather than serde: build a [`JsonValue`], call
//! [`JsonValue::render`]. Objects preserve insertion order (the committed
//! benchmark artifacts are diffed as text, so field order must be
//! stable), integers render exactly, and floats render with an explicit
//! decimal count so output never depends on shortest-float formatting.

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered exactly.
    UInt(u64),
    /// A signed integer, rendered exactly.
    Int(i64),
    /// A float rendered with a fixed number of decimals
    /// (non-finite values render as `null`).
    Float(f64, usize),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved on render.
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::push`].
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — a builder
    /// misuse, not a data error).
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("push on non-object JSON value {other:?}"),
        }
        self
    }

    /// Builder-style [`JsonValue::push`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.push(key, value);
        self
    }

    /// A float field rendered with `decimals` decimal places.
    pub fn float(value: f64, decimals: usize) -> Self {
        JsonValue::Float(value, decimals)
    }

    /// Renders the value as pretty-printed JSON (two-space indent) with a
    /// trailing newline, matching the committed artifact style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => out.push_str(&v.to_string()),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v, decimals) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.decimals$}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    escape_into(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl JsonValue {
    /// Parses a JSON document. Numbers with a fraction or exponent parse
    /// as [`JsonValue::Float`] (decimals recorded from the literal, capped
    /// at 17); integers parse as [`JsonValue::UInt`]/[`JsonValue::Int`].
    /// This is the read side of [`JsonValue::render`] — enough to validate
    /// and query committed `BENCH_*.json` artifacts, not a general
    /// streaming parser.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a field of an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float ([`JsonValue::Float`] or any integer).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(v, _) => Some(*v),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or("unterminated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // renderer; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", char::from(other))),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (input is a &str, so slicing
                    // at a char boundary is safe via chars()).
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut decimals = 0usize;
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            decimals = (self.pos - frac_start).min(17);
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
            Ok(JsonValue::Float(v, decimals))
        } else if text.starts_with('-') {
            let v: i64 = text
                .parse()
                .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
            Ok(JsonValue::Int(v))
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
            Ok(JsonValue::UInt(v))
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_object_with_stable_order() {
        let v = JsonValue::object()
            .with("b", 2u64)
            .with("a", JsonValue::Array(vec![1u64.into(), JsonValue::Null]))
            .with("s", "x\"y\\z");
        let text = v.render();
        assert_eq!(
            text,
            "{\n  \"b\": 2,\n  \"a\": [\n    1,\n    null\n  ],\n  \"s\": \"x\\\"y\\\\z\"\n}\n"
        );
    }

    #[test]
    fn floats_use_fixed_decimals_and_nonfinite_is_null() {
        assert_eq!(JsonValue::float(1.25, 3).render(), "1.250\n");
        assert_eq!(JsonValue::float(f64::NAN, 1).render(), "null\n");
        assert_eq!(JsonValue::float(f64::INFINITY, 1).render(), "null\n");
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(JsonValue::object().render(), "{}\n");
        assert_eq!(JsonValue::Array(Vec::new()).render(), "[]\n");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let v = JsonValue::object()
            .with("schema_version", 2u64)
            .with("neg", JsonValue::Int(-3))
            .with("ratio", JsonValue::float(2.25, 2))
            .with(
                "arr",
                JsonValue::Array(vec![JsonValue::Null, true.into(), "s\"x".into()]),
            );
        let parsed = JsonValue::parse(&v.render()).expect("round trip");
        assert_eq!(parsed, v);
        assert_eq!(
            parsed.get("schema_version").and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(parsed.get("ratio").and_then(JsonValue::as_f64), Some(2.25));
        assert_eq!(
            parsed.get("arr").and_then(|a| match a {
                JsonValue::Array(items) => items.get(2).and_then(JsonValue::as_str),
                _ => None,
            }),
            Some("s\"x")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{}extra").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_exponents_and_unicode_escapes() {
        assert_eq!(JsonValue::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(
            JsonValue::parse("\"a\\u0041\"").unwrap().as_str(),
            Some("aA")
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(
            JsonValue::from("a\u{01}b\nc").render(),
            "\"a\\u0001b\\nc\"\n"
        );
    }
}
