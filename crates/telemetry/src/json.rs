//! A minimal JSON emitter, shared by every artifact writer in the
//! workspace (telemetry snapshots, plan-explainability reports, the
//! committed `BENCH_*.json` benchmark files).
//!
//! The workspace bans external dependencies, so this is a small tree
//! model rather than serde: build a [`JsonValue`], call
//! [`JsonValue::render`]. Objects preserve insertion order (the committed
//! benchmark artifacts are diffed as text, so field order must be
//! stable), integers render exactly, and floats render with an explicit
//! decimal count so output never depends on shortest-float formatting.

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered exactly.
    UInt(u64),
    /// A signed integer, rendered exactly.
    Int(i64),
    /// A float rendered with a fixed number of decimals
    /// (non-finite values render as `null`).
    Float(f64, usize),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved on render.
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::push`].
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — a builder
    /// misuse, not a data error).
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("push on non-object JSON value {other:?}"),
        }
        self
    }

    /// Builder-style [`JsonValue::push`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.push(key, value);
        self
    }

    /// A float field rendered with `decimals` decimal places.
    pub fn float(value: f64, decimals: usize) -> Self {
        JsonValue::Float(value, decimals)
    }

    /// Renders the value as pretty-printed JSON (two-space indent) with a
    /// trailing newline, matching the committed artifact style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => out.push_str(&v.to_string()),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v, decimals) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.decimals$}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    escape_into(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_object_with_stable_order() {
        let v = JsonValue::object()
            .with("b", 2u64)
            .with("a", JsonValue::Array(vec![1u64.into(), JsonValue::Null]))
            .with("s", "x\"y\\z");
        let text = v.render();
        assert_eq!(
            text,
            "{\n  \"b\": 2,\n  \"a\": [\n    1,\n    null\n  ],\n  \"s\": \"x\\\"y\\\\z\"\n}\n"
        );
    }

    #[test]
    fn floats_use_fixed_decimals_and_nonfinite_is_null() {
        assert_eq!(JsonValue::float(1.25, 3).render(), "1.250\n");
        assert_eq!(JsonValue::float(f64::NAN, 1).render(), "null\n");
        assert_eq!(JsonValue::float(f64::INFINITY, 1).render(), "null\n");
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(JsonValue::object().render(), "{}\n");
        assert_eq!(JsonValue::Array(Vec::new()).render(), "[]\n");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(
            JsonValue::from("a\u{01}b\nc").render(),
            "\"a\\u0001b\\nc\"\n"
        );
    }
}
