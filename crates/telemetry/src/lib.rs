//! Zero-overhead instrumentation facade for the m2m workspace.
//!
//! The paper's whole evaluation is an observability exercise — per-round
//! message and energy accounting, per-edge raw-vs-partial decisions — and
//! the ROADMAP's "as fast as the hardware allows" target needs profiling
//! hooks that attribute time to optimizer vs. executor phases. This crate
//! is the shared substrate: a global, dependency-free facade with
//!
//! * **monotonic counters** ([`counter`]) and **fixed-bucket power-of-two
//!   histograms** ([`observe`], [`Dist`]) for values and durations;
//! * **scoped span timers** ([`span`]) that record elapsed nanoseconds
//!   into a histogram on drop;
//! * a **leveled log sink** ([`m2m_log!`], quiet by default, `M2M_LOG` to
//!   enable) so library code never writes to stderr unconditionally;
//! * env control: `M2M_TRACE=1` enables tracing at startup,
//!   `M2M_TRACE_OUT=path` makes [`export_if_requested`] write a JSON
//!   snapshot, `M2M_LOG=debug` (etc.) opens the log sink.
//!
//! # The overhead contract
//!
//! Instrumentation must cost (almost) nothing when disabled, because the
//! sites live on the optimizer's and executor's hot paths. Every public
//! entry point first checks one global [`AtomicU8`] with a single
//! **relaxed load** ([`enabled`]); when tracing is off that load-and-branch
//! is the *entire* cost, and the facade is guaranteed — property-tested in
//! `tests/telemetry_equivalence.rs` at the workspace root — to never
//! change any observable result: plans, round results, and costs are
//! bit-identical with telemetry enabled and disabled.
//!
//! # Shard-per-thread registry
//!
//! When tracing is on, events record into a **per-thread shard** (a
//! thread-local `Arc` registered in a global list on first use), so the
//! [`crate::span`]/[`crate::counter`] calls issued concurrently by
//! `m2m-core`'s scoped worker pool never contend with each other: each
//! shard's mutex is only ever touched by its owning thread — and by
//! [`snapshot`], which **drains by aggregation**: it walks the registry
//! and sums shards into one [`Snapshot`] without clearing them. Shards of
//! finished worker threads stay registered (the registry holds the `Arc`),
//! so no event is lost when a scoped pool winds down; [`reset`] zeroes
//! every shard in place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod timeseries;

use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use json::JsonValue;

/// Environment variable that enables tracing at first use (`1`, `true`,
/// `on`, `yes`, case-insensitive).
pub const TRACE_ENV: &str = "M2M_TRACE";
/// Environment variable naming the file [`export_if_requested`] writes
/// the JSON snapshot to.
pub const TRACE_OUT_ENV: &str = "M2M_TRACE_OUT";
/// Environment variable setting the log sink threshold (`error`, `warn`,
/// `info`, `debug`, `trace`, or `off`).
pub const LOG_ENV: &str = "M2M_LOG";

// ---------------------------------------------------------------------
// The tracing flag.
// ---------------------------------------------------------------------

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static TRACE: AtomicU8 = AtomicU8::new(UNINIT);

/// True if tracing is enabled. This is the disabled-path hot check: one
/// relaxed atomic load and a branch (the env read happens once, on the
/// first call ever).
#[inline]
pub fn enabled() -> bool {
    match TRACE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_trace_from_env(),
    }
}

#[cold]
fn init_trace_from_env() -> bool {
    let on = std::env::var(TRACE_ENV).is_ok_and(|v| parse_bool(&v));
    // Racing initializers agree (same env), and an explicit set_enabled
    // that slipped in between wins via the failed exchange.
    let _ = TRACE.compare_exchange(
        UNINIT,
        if on { ON } else { OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    TRACE.load(Ordering::Relaxed) == ON
}

/// Turns tracing on or off programmatically (overrides `M2M_TRACE`).
pub fn set_enabled(on: bool) {
    TRACE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

fn parse_bool(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "on" | "yes"
    )
}

// ---------------------------------------------------------------------
// Shard-per-thread event storage.
// ---------------------------------------------------------------------

/// Number of histogram buckets. Bucket `i` counts values whose bit length
/// is `i` (bucket 0 holds the value 0), i.e. bucket `i > 0` spans
/// `[2^(i-1), 2^i - 1]`; the last bucket absorbs everything larger.
pub const DIST_BUCKETS: usize = 40;

/// A fixed-bucket distribution: count, sum, max, and power-of-two
/// buckets. Used for both value observations and span durations (ns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dist {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Power-of-two buckets; see [`DIST_BUCKETS`].
    pub buckets: [u64; DIST_BUCKETS],
}

impl Default for Dist {
    fn default() -> Self {
        Dist {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; DIST_BUCKETS],
        }
    }
}

impl Dist {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros() as usize).min(DIST_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    fn merge(&mut self, other: &Dist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct ShardData {
    counters: BTreeMap<&'static str, u64>,
    dists: BTreeMap<&'static str, Dist>,
}

struct Shard {
    data: Mutex<ShardData>,
}

fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_SHARD: OnceCell<Arc<Shard>> = const { OnceCell::new() };
}

fn with_shard(f: impl FnOnce(&mut ShardData)) {
    LOCAL_SHARD.with(|cell| {
        let shard = cell.get_or_init(|| {
            let shard = Arc::new(Shard {
                data: Mutex::new(ShardData::default()),
            });
            registry()
                .lock()
                .expect("registry poisoned")
                .push(Arc::clone(&shard));
            shard
        });
        f(&mut shard.data.lock().expect("shard poisoned"));
    });
}

/// Adds `delta` to the named monotonic counter. No-op when tracing is
/// disabled (one relaxed load).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        with_shard(|d| *d.counters.entry(name).or_insert(0) += delta);
    }
}

/// Records one value into the named distribution. No-op when tracing is
/// disabled (one relaxed load).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        with_shard(|d| d.dists.entry(name).or_default().record(value));
    }
}

// ---------------------------------------------------------------------
// Scoped span timers.
// ---------------------------------------------------------------------

/// A scoped timer from [`span`]: records elapsed nanoseconds into the
/// named distribution when dropped. Inert (no clock read at all) when
/// tracing was disabled at creation.
#[must_use = "a span records on drop; binding it to _ discards the measurement immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a scoped span timer. When tracing is disabled this costs one
/// relaxed load and never touches the clock.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            with_shard(|d| d.dists.entry(self.name).or_default().record(ns));
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot / drain.
// ---------------------------------------------------------------------

/// An aggregated view of every shard at one point in time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals, summed across shards.
    pub counters: BTreeMap<String, u64>,
    /// Distribution totals, merged across shards.
    pub dists: BTreeMap<String, Dist>,
}

impl Snapshot {
    /// The named counter's total (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named distribution, if any value was recorded.
    pub fn dist(&self, name: &str) -> Option<&Dist> {
        self.dists.get(name)
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.dists.is_empty()
    }

    /// The snapshot as a JSON value: a `"counters"` object and a
    /// `"dists"` object (count/sum/max/mean plus non-empty buckets).
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::object();
        for (name, value) in &self.counters {
            counters.push(name, *value);
        }
        let mut dists = JsonValue::object();
        for (name, dist) in &self.dists {
            let mut buckets = JsonValue::object();
            for (i, &n) in dist.buckets.iter().enumerate() {
                if n > 0 {
                    let upper = if i == 0 {
                        0
                    } else if i >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << i) - 1
                    };
                    buckets.push(&format!("le_{upper}"), n);
                }
            }
            dists.push(
                name,
                JsonValue::object()
                    .with("count", dist.count)
                    .with("sum", dist.sum)
                    .with("max", dist.max)
                    .with("mean", JsonValue::float(dist.mean(), 1))
                    .with("buckets", buckets),
            );
        }
        JsonValue::object()
            .with("counters", counters)
            .with("dists", dists)
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "{name} = {value}")?;
        }
        for (name, dist) in &self.dists {
            writeln!(
                f,
                "{name}: count {} sum {} max {} mean {:.1}",
                dist.count,
                dist.sum,
                dist.max,
                dist.mean()
            )?;
        }
        Ok(())
    }
}

/// Aggregates every shard (including shards of threads that have already
/// exited) into one [`Snapshot`] without clearing anything.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for shard in registry().lock().expect("registry poisoned").iter() {
        let data = shard.data.lock().expect("shard poisoned");
        for (&name, &value) in &data.counters {
            *snap.counters.entry(name.to_string()).or_insert(0) += value;
        }
        for (&name, dist) in &data.dists {
            snap.dists.entry(name.to_string()).or_default().merge(dist);
        }
    }
    snap
}

/// Zeroes every shard in place (shards stay registered).
pub fn reset() {
    for shard in registry().lock().expect("registry poisoned").iter() {
        let mut data = shard.data.lock().expect("shard poisoned");
        data.counters.clear();
        data.dists.clear();
    }
}

/// If tracing is enabled and `M2M_TRACE_OUT` names a file, writes the
/// current snapshot there as JSON and returns the path. Binaries call
/// this once before exiting.
pub fn export_if_requested() -> Option<String> {
    if !enabled() {
        return None;
    }
    let path = std::env::var(TRACE_OUT_ENV).ok()?;
    if path.is_empty() {
        return None;
    }
    std::fs::write(&path, snapshot().to_json().render()).ok()?;
    Some(path)
}

// ---------------------------------------------------------------------
// Leveled log sink.
// ---------------------------------------------------------------------

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// High-level progress (what binaries used to `eprintln!`).
    Info = 3,
    /// Library-internal diagnostics.
    Debug = 4,
    /// Very chatty tracing.
    Trace = 5,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (`"warn"`, `"3"`, …) as accepted by `M2M_LOG`.
    pub fn parse(v: &str) -> Option<Level> {
        Some(match v.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "quiet" => Level::Off,
            "error" | "1" => Level::Error,
            "warn" | "warning" | "2" => Level::Warn,
            "info" | "3" => Level::Info,
            "debug" | "4" => Level::Debug,
            "trace" | "5" => Level::Trace,
            _ => return None,
        })
    }
}

const LOG_UNINIT: u8 = u8::MAX;
static LOG_THRESHOLD: AtomicU8 = AtomicU8::new(LOG_UNINIT);

fn log_threshold_with_default(default: Level) -> Level {
    let raw = LOG_THRESHOLD.load(Ordering::Relaxed);
    if raw != LOG_UNINIT {
        return threshold_from_raw(raw);
    }
    let level = std::env::var(LOG_ENV)
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(default);
    let _ = LOG_THRESHOLD.compare_exchange(
        LOG_UNINIT,
        level as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    threshold_from_raw(LOG_THRESHOLD.load(Ordering::Relaxed))
}

fn threshold_from_raw(raw: u8) -> Level {
    match raw {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Off,
    }
}

/// True if a message at `level` would be emitted. Library code is quiet
/// by default: with no `M2M_LOG` and no [`init_logging`], the threshold
/// is [`Level::Off`].
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level != Level::Off && level <= log_threshold_with_default(Level::Off)
}

/// Sets the log threshold for this process, overriding `M2M_LOG`.
pub fn set_log_threshold(level: Level) {
    LOG_THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// Initializes the log sink with a process default: `M2M_LOG` wins if
/// set, otherwise `default` becomes the threshold. Binaries that want
/// their progress visible call `init_logging(Level::Info)`; library code
/// never calls this, so it stays quiet unless the user opts in.
pub fn init_logging(default: Level) {
    let _ = log_threshold_with_default(default);
}

/// Emits one log line to stderr. Use through [`m2m_log!`], which checks
/// [`log_enabled`] before formatting anything.
pub fn log(level: Level, module: &str, args: fmt::Arguments<'_>) {
    eprintln!("[{} {}] {}", level.name(), module, args);
}

/// Logs through the leveled sink: checks the threshold first, so the
/// message is never even formatted when the sink is quiet (the default).
///
/// ```
/// use m2m_telemetry::{m2m_log, Level};
/// m2m_log!(Level::Debug, "solved {} edges in {} ms", 10, 3);
/// ```
#[macro_export]
macro_rules! m2m_log {
    ($level:expr, $($arg:tt)*) => {{
        let level = $level;
        if $crate::log_enabled(level) {
            $crate::log(level, module_path!(), format_args!($($arg)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_facade_records_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        counter("test.disabled.counter", 5);
        observe("test.disabled.dist", 9);
        drop(span("test.disabled.span"));
        let snap = snapshot();
        assert_eq!(snap.counter("test.disabled.counter"), 0);
        assert!(snap.dist("test.disabled.dist").is_none());
        assert!(snap.dist("test.disabled.span").is_none());
    }

    #[test]
    fn counters_and_dists_aggregate_across_threads() {
        let _g = lock();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for i in 0..10 {
                        counter("test.shared.counter", 1);
                        observe("test.shared.dist", (t * 10 + i) as u64);
                    }
                });
            }
        });
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("test.shared.counter"), 40);
        let dist = snap.dist("test.shared.dist").expect("dist recorded");
        assert_eq!(dist.count, 40);
        assert_eq!(dist.sum, (0u64..40).sum());
        assert_eq!(dist.max, 39);
        assert_eq!(dist.buckets.iter().sum::<u64>(), 40);
    }

    #[test]
    fn span_records_elapsed_nanoseconds() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _span = span("test.span.ns");
            std::hint::black_box(17u64);
        }
        let snap = snapshot();
        set_enabled(false);
        let dist = snap.dist("test.span.ns").expect("span recorded");
        assert_eq!(dist.count, 1);
    }

    #[test]
    fn reset_zeroes_but_snapshot_does_not() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter("test.reset.counter", 3);
        assert_eq!(snapshot().counter("test.reset.counter"), 3);
        // Snapshot is a non-destructive drain: counts survive it.
        assert_eq!(snapshot().counter("test.reset.counter"), 3);
        reset();
        let after = snapshot().counter("test.reset.counter");
        set_enabled(false);
        assert_eq!(after, 0);
    }

    #[test]
    fn dist_buckets_follow_bit_length() {
        let mut d = Dist::default();
        d.record(0);
        d.record(1);
        d.record(2);
        d.record(3);
        d.record(1024);
        assert_eq!(d.buckets[0], 1, "value 0");
        assert_eq!(d.buckets[1], 1, "value 1");
        assert_eq!(d.buckets[2], 2, "values 2..=3");
        assert_eq!(d.buckets[11], 1, "value 1024");
        assert_eq!(d.count, 5);
        assert_eq!(d.max, 1024);
    }

    #[test]
    fn snapshot_json_shape() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter("test.json.counter", 2);
        observe("test.json.dist", 5);
        let json = snapshot().to_json().render();
        set_enabled(false);
        assert!(json.contains("\"test.json.counter\": 2"));
        assert!(json.contains("\"test.json.dist\""));
        assert!(
            json.contains("\"le_7\": 1"),
            "value 5 lands in the le_7 bucket: {json}"
        );
    }

    #[test]
    fn level_parsing_and_threshold() {
        let _g = lock();
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
        set_log_threshold(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Off), "Off is never emitted");
        set_log_threshold(Level::Off);
        assert!(!log_enabled(Level::Error));
        // The macro must not panic whether enabled or not.
        m2m_log!(Level::Error, "suppressed {}", 1);
        set_log_threshold(Level::Off);
    }
}
