//! Time-series observability primitives: dense per-node accumulator
//! planes, a bounded ring buffer for structured per-round events, and
//! wall-clock stage spans exported as Chrome `trace_event` JSON.
//!
//! The counter facade in the crate root answers "how much, in total";
//! this module answers *where* and *when*: which node spent the energy,
//! which round lost coverage, which pipeline stage took the time. It is
//! the substrate the session-level flight recorder
//! (`m2m_core::obs::FlightRecorder`) and the `m2m_obs` bin read from.
//!
//! # The obs flag
//!
//! Everything here is gated by its own tri-state atomic ([`obs_enabled`],
//! env `M2M_OBS`), mirroring the tracing flag: when off — the default —
//! every hot-path site costs one relaxed load, and the property test
//! `tests/obs_equivalence.rs` pins that flipping the flag never changes a
//! result bit. The flag is separate from `M2M_TRACE` because the planes
//! are dense per-node state, an order of magnitude heavier than the
//! counter shards; either can be on without the other.
//!
//! # Planes and the flush contract
//!
//! A [`NodePlanes`] is a set of dense columns (energy, messages tx/rx,
//! retries, drops) over a fixed sorted node-id universe. Hot loops own a
//! *local* instance inside their per-worker scratch arena and update it
//! with plain array stores — no locks, no allocation. When a worker
//! finishes its chunk (or its scratch is dropped), the local planes are
//! flushed into the process-wide registry with [`merge_planes`];
//! [`planes_snapshot`] aggregates for readers. The registry merges by
//! node id, so planes from executors with different node universes
//! combine correctly.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonValue;

/// Environment variable enabling the observability planes and recorders
/// at first use (`1`, `true`, `on`, `yes`, case-insensitive).
pub const OBS_ENV: &str = "M2M_OBS";

/// Schema version stamped into every recorder dump ([`Event`] kinds,
/// plane columns, series fields). Bump on any incompatible change.
pub const OBS_SCHEMA_VERSION: u64 = 1;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static OBS: AtomicU8 = AtomicU8::new(UNINIT);

/// True if observability collection is enabled. One relaxed atomic load
/// and a branch on the hot path (the env read happens once).
#[inline]
pub fn obs_enabled() -> bool {
    match OBS.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_obs_from_env(),
    }
}

#[cold]
fn init_obs_from_env() -> bool {
    let on = std::env::var(OBS_ENV).is_ok_and(|v| {
        matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "on" | "yes"
        )
    });
    let _ = OBS.compare_exchange(
        UNINIT,
        if on { ON } else { OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    OBS.load(Ordering::Relaxed) == ON
}

/// Turns observability collection on or off programmatically (overrides
/// `M2M_OBS`).
pub fn set_obs_enabled(on: bool) {
    OBS.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Dense per-node accumulator planes.
// ---------------------------------------------------------------------

/// Dense per-node accumulator planes over a fixed, sorted node-id
/// universe: energy spent transmitting / receiving (µJ), messages
/// transmitted / received, failed transmission attempts (retries), and
/// messages abandoned (drops). Updates are plain array stores — the
/// allocation-free shape hot loops need — and instances merge by node id
/// so per-worker locals fold into the global registry losslessly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodePlanes {
    ids: Vec<u64>,
    energy_tx_uj: Vec<f64>,
    energy_rx_uj: Vec<f64>,
    msgs_tx: Vec<u64>,
    msgs_rx: Vec<u64>,
    retries: Vec<u64>,
    drops: Vec<u64>,
    rounds: u64,
    touched: bool,
}

impl NodePlanes {
    /// Planes over the given node ids (sorted and deduplicated here).
    pub fn for_ids(mut ids: Vec<u64>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        let n = ids.len();
        NodePlanes {
            ids,
            energy_tx_uj: vec![0.0; n],
            energy_rx_uj: vec![0.0; n],
            msgs_tx: vec![0; n],
            msgs_rx: vec![0; n],
            retries: vec![0; n],
            drops: vec![0; n],
            rounds: 0,
            touched: false,
        }
    }

    /// Number of nodes in the universe.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted node-id universe.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The dense slot of `id`, if it is in the universe.
    #[inline]
    pub fn slot(&self, id: u64) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Records `attempts` transmission attempts at `slot`, each paying
    /// `uj_per_attempt` µJ.
    #[inline]
    pub fn record_tx(&mut self, slot: usize, attempts: u64, uj_per_attempt: f64) {
        self.msgs_tx[slot] += attempts;
        self.energy_tx_uj[slot] += uj_per_attempt * attempts as f64;
        self.touched = true;
    }

    /// Records one successful reception at `slot`, paying `uj` µJ.
    #[inline]
    pub fn record_rx(&mut self, slot: usize, uj: f64) {
        self.msgs_rx[slot] += 1;
        self.energy_rx_uj[slot] += uj;
        self.touched = true;
    }

    /// Records `n` failed transmission attempts at `slot`.
    #[inline]
    pub fn record_retries(&mut self, slot: usize, n: u64) {
        self.retries[slot] += n;
        self.touched = true;
    }

    /// Records one message abandoned at `slot` (retry budget exhausted).
    #[inline]
    pub fn record_drop(&mut self, slot: usize) {
        self.drops[slot] += 1;
        self.touched = true;
    }

    /// Counts `n` rounds folded into these planes.
    #[inline]
    pub fn add_rounds(&mut self, n: u64) {
        self.rounds += n;
        self.touched = true;
    }

    /// Rounds folded in so far.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// True if nothing was recorded since construction / the last
    /// [`NodePlanes::clear`].
    #[inline]
    pub fn is_zero(&self) -> bool {
        !self.touched
    }

    /// Transmit energy (µJ) per node, aligned with [`NodePlanes::ids`].
    #[inline]
    pub fn energy_tx_uj(&self) -> &[f64] {
        &self.energy_tx_uj
    }

    /// Receive energy (µJ) per node, aligned with [`NodePlanes::ids`].
    #[inline]
    pub fn energy_rx_uj(&self) -> &[f64] {
        &self.energy_rx_uj
    }

    /// Messages transmitted (attempts included) per node.
    #[inline]
    pub fn msgs_tx(&self) -> &[u64] {
        &self.msgs_tx
    }

    /// Messages received per node.
    #[inline]
    pub fn msgs_rx(&self) -> &[u64] {
        &self.msgs_rx
    }

    /// Failed transmission attempts per node.
    #[inline]
    pub fn retries(&self) -> &[u64] {
        &self.retries
    }

    /// Messages abandoned per node.
    #[inline]
    pub fn drops(&self) -> &[u64] {
        &self.drops
    }

    /// Total energy (tx + rx, µJ) spent at `slot`.
    #[inline]
    pub fn energy_uj(&self, slot: usize) -> f64 {
        self.energy_tx_uj[slot] + self.energy_rx_uj[slot]
    }

    /// Remaining battery estimate (µJ) at `slot`, given each node
    /// started with `budget_uj`. Clamped at zero — a depleted node does
    /// not go negative.
    #[inline]
    pub fn battery_uj(&self, slot: usize, budget_uj: f64) -> f64 {
        (budget_uj - self.energy_uj(slot)).max(0.0)
    }

    /// Zeroes every column in place, keeping the node universe.
    pub fn clear(&mut self) {
        self.energy_tx_uj.fill(0.0);
        self.energy_rx_uj.fill(0.0);
        self.msgs_tx.fill(0);
        self.msgs_rx.fill(0);
        self.retries.fill(0);
        self.drops.fill(0);
        self.rounds = 0;
        self.touched = false;
    }

    /// Merges `other` into `self` (`other` scaled by `factor`), aligning
    /// by node id; ids in `other` missing from `self`'s universe are
    /// adopted. `factor` lets a static per-round template stand in for
    /// `factor` identical rounds.
    pub fn merge_scaled(&mut self, other: &NodePlanes, factor: u64) {
        if other.is_zero() || factor == 0 {
            return;
        }
        if self.ids != other.ids {
            self.adopt_union(&other.ids);
        }
        let f = factor as f64;
        for (i, &id) in other.ids.iter().enumerate() {
            let s = self.slot(id).expect("union adopted above");
            self.energy_tx_uj[s] += other.energy_tx_uj[i] * f;
            self.energy_rx_uj[s] += other.energy_rx_uj[i] * f;
            self.msgs_tx[s] += other.msgs_tx[i] * factor;
            self.msgs_rx[s] += other.msgs_rx[i] * factor;
            self.retries[s] += other.retries[i] * factor;
            self.drops[s] += other.drops[i] * factor;
        }
        self.rounds += other.rounds * factor;
        self.touched = true;
    }

    /// [`NodePlanes::merge_scaled`] with `factor == 1`.
    pub fn merge(&mut self, other: &NodePlanes) {
        self.merge_scaled(other, 1);
    }

    /// Grows the universe to the union of `self.ids` and `extra`,
    /// re-laying every column.
    fn adopt_union(&mut self, extra: &[u64]) {
        let mut union: Vec<u64> = self.ids.iter().chain(extra).copied().collect();
        union.sort_unstable();
        union.dedup();
        let mut fresh = NodePlanes::for_ids(union);
        for (i, &id) in self.ids.iter().enumerate() {
            let s = fresh.slot(id).expect("union contains every old id");
            fresh.energy_tx_uj[s] = self.energy_tx_uj[i];
            fresh.energy_rx_uj[s] = self.energy_rx_uj[i];
            fresh.msgs_tx[s] = self.msgs_tx[i];
            fresh.msgs_rx[s] = self.msgs_rx[i];
            fresh.retries[s] = self.retries[i];
            fresh.drops[s] = self.drops[i];
        }
        fresh.rounds = self.rounds;
        fresh.touched = self.touched;
        *self = fresh;
    }

    /// The planes as a JSON array of per-node objects (ascending id),
    /// including a battery estimate against `battery_budget_uj`. Floats
    /// render with 3 decimals — µJ resolution beyond that is noise.
    pub fn to_json(&self, battery_budget_uj: f64) -> JsonValue {
        let nodes: Vec<JsonValue> = (0..self.len())
            .map(|i| {
                JsonValue::object()
                    .with("node", self.ids[i])
                    .with("energy_tx_uj", JsonValue::float(self.energy_tx_uj[i], 3))
                    .with("energy_rx_uj", JsonValue::float(self.energy_rx_uj[i], 3))
                    .with("msgs_tx", self.msgs_tx[i])
                    .with("msgs_rx", self.msgs_rx[i])
                    .with("retries", self.retries[i])
                    .with("drops", self.drops[i])
                    .with(
                        "battery_uj",
                        JsonValue::float(self.battery_uj(i, battery_budget_uj), 3),
                    )
            })
            .collect();
        JsonValue::Array(nodes)
    }
}

fn planes_registry() -> &'static Mutex<NodePlanes> {
    static REGISTRY: OnceLock<Mutex<NodePlanes>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(NodePlanes::default()))
}

/// Flushes `local` into the process-wide plane registry and clears it.
/// Called on chunk completion / scratch drop — never per round — so the
/// registry lock stays off the hot path.
pub fn merge_planes(local: &mut NodePlanes) {
    if local.is_zero() {
        return;
    }
    planes_registry()
        .lock()
        .expect("plane registry poisoned")
        .merge(local);
    local.clear();
}

/// Merges `template` scaled by `rounds` into the registry — the shape the
/// reliable executor uses, whose per-round per-node profile is static.
pub fn merge_planes_scaled(template: &NodePlanes, rounds: u64) {
    if template.is_zero() || rounds == 0 {
        return;
    }
    planes_registry()
        .lock()
        .expect("plane registry poisoned")
        .merge_scaled(template, rounds);
}

/// A copy of the process-wide accumulated planes (non-destructive).
pub fn planes_snapshot() -> NodePlanes {
    planes_registry()
        .lock()
        .expect("plane registry poisoned")
        .clone()
}

/// Empties the process-wide plane registry (universe included).
pub fn reset_planes() {
    *planes_registry().lock().expect("plane registry poisoned") = NodePlanes::default();
}

// ---------------------------------------------------------------------
// Bounded structured-event ring.
// ---------------------------------------------------------------------

/// Marker for an absent node operand in an [`Event`].
pub const NO_NODE: u64 = u64::MAX;

/// What happened — the structured event vocabulary of the flight
/// recorder. Variants are part of [`OBS_SCHEMA_VERSION`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A link saw failed transmission attempts this round but the
    /// message still got through (`a` → `b`, `value` = failures).
    LinkDrop,
    /// A message was abandoned after exhausting its retry budget
    /// (`a` → `b`, `value` = attempts made).
    RetryExhausted,
    /// A destination ended the round with partial coverage (`a` = dest,
    /// `value` = missing sources).
    CoverageLoss,
    /// A destination transitioned fresh → stale (`a` = dest).
    StaleEnter,
    /// A destination recovered full coverage (`a` = dest, `value` =
    /// rounds it had been stale).
    StaleClear,
    /// The churn gate fired and routes were rebuilt.
    Reroute,
    /// The churn gate absorbed a drift observation.
    RerouteSuppressed,
    /// Routing tables were replaced outside the churn loop.
    RouteChange,
    /// One event-driven simulator round completed (`value` = peak
    /// per-node queue depth observed during the round).
    SimRound,
    /// A node's bounded outbound link queue was pushed past its
    /// configured depth this round (`a` = node, `value` = overflow
    /// pushes).
    QueueOverflow,
}

impl EventKind {
    /// The stable wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::LinkDrop => "link_drop",
            EventKind::RetryExhausted => "retry_exhausted",
            EventKind::CoverageLoss => "coverage_loss",
            EventKind::StaleEnter => "stale_enter",
            EventKind::StaleClear => "stale_clear",
            EventKind::Reroute => "reroute",
            EventKind::RerouteSuppressed => "reroute_suppressed",
            EventKind::RouteChange => "route_change",
            EventKind::SimRound => "sim_round",
            EventKind::QueueOverflow => "queue_overflow",
        }
    }
}

/// One structured per-round event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The session round the event belongs to.
    pub round: u64,
    /// What happened.
    pub kind: EventKind,
    /// Primary node operand (tail / destination), or [`NO_NODE`].
    pub a: u64,
    /// Secondary node operand (head), or [`NO_NODE`].
    pub b: u64,
    /// Kind-specific magnitude (failures, missing sources, staleness).
    pub value: u64,
}

impl Event {
    /// The event as a JSON object (absent operands omitted).
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object()
            .with("round", self.round)
            .with("kind", self.kind.name());
        if self.a != NO_NODE {
            obj.push("a", self.a);
        }
        if self.b != NO_NODE {
            obj.push("b", self.b);
        }
        obj.push("value", self.value);
        obj
    }
}

/// A bounded ring buffer of [`Event`]s: pushes are O(1), the newest
/// `capacity` events are kept, and the count of overwritten (lost-to-
/// capacity) events is tracked so a dump can say it is partial.
#[derive(Clone, Debug)]
pub struct EventRing {
    cap: usize,
    buf: Vec<Event>,
    /// Index of the oldest event once the buffer is full (0 before).
    head: usize,
    overwritten: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            cap: capacity,
            buf: Vec::new(),
            head: 0,
            overwritten: 0,
        }
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    #[inline]
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let n = self.buf.len();
        (0..n).map(move |i| &self.buf[(self.head + i) % n])
    }

    /// The ring as a JSON array (oldest → newest).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Event::to_json).collect())
    }
}

// ---------------------------------------------------------------------
// Stage spans → Chrome trace_event JSON.
// ---------------------------------------------------------------------

/// Stage name: routing-tree construction.
pub const STAGE_ROUTE: &str = "route";
/// Stage name: topology interning.
pub const STAGE_INTERN: &str = "intern";
/// Stage name: per-edge problem construction.
pub const STAGE_PROBLEMS: &str = "problems";
/// Stage name: the per-edge solve fan-out.
pub const STAGE_SOLVE: &str = "solve";
/// Stage name: schedule lowering.
pub const STAGE_COMPILE: &str = "compile";

/// Hard cap on retained stage-span events; later spans are counted but
/// not stored (a runaway loop must not grow the trace without bound).
const STAGE_EVENT_CAP: usize = 65_536;

#[derive(Clone, Copy, Debug)]
struct StageEvent {
    name: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

#[derive(Default)]
struct StageLog {
    events: Vec<StageEvent>,
    dropped: u64,
}

fn stage_log() -> &'static Mutex<StageLog> {
    static LOG: OnceLock<Mutex<StageLog>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(StageLog::default()))
}

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// A scoped stage timer from [`stage_span`]: on drop, appends one Chrome
/// `"ph": "X"` complete event to the process-wide stage log. Inert (no
/// clock read) when observability was disabled at creation.
#[must_use = "a stage span records on drop; binding it to _ discards the measurement immediately"]
pub struct StageSpan {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a stage span. Costs one relaxed load when observability is off.
#[inline]
pub fn stage_span(name: &'static str) -> StageSpan {
    StageSpan {
        name,
        start: obs_enabled().then(|| {
            // Pin the epoch before the span's own start so ts ≥ 0.
            process_epoch();
            Instant::now()
        }),
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ts_us =
            u64::try_from(start.duration_since(process_epoch()).as_micros()).unwrap_or(u64::MAX);
        let mut log = stage_log().lock().expect("stage log poisoned");
        if log.events.len() < STAGE_EVENT_CAP {
            log.events.push(StageEvent {
                name: self.name,
                ts_us,
                dur_us,
                tid: current_tid(),
            });
        } else {
            log.dropped += 1;
        }
    }
}

/// The recorded stage spans as a Chrome `trace_event` document
/// (`{"traceEvents": [...]}` with complete `"ph": "X"` events),
/// loadable in Perfetto or speedscope.
pub fn chrome_trace() -> JsonValue {
    let log = stage_log().lock().expect("stage log poisoned");
    let events: Vec<JsonValue> = log
        .events
        .iter()
        .map(|e| {
            JsonValue::object()
                .with("name", e.name)
                .with("ph", "X")
                .with("ts", e.ts_us)
                .with("dur", e.dur_us)
                .with("pid", 1u64)
                .with("tid", e.tid)
        })
        .collect();
    JsonValue::object()
        .with("traceEvents", JsonValue::Array(events))
        .with("displayTimeUnit", "ms")
        .with("m2m_stage_spans_dropped", log.dropped)
}

/// Number of stage spans currently recorded.
pub fn stage_span_count() -> usize {
    stage_log().lock().expect("stage log poisoned").events.len()
}

/// Clears the recorded stage spans.
pub fn reset_stage_spans() {
    let mut log = stage_log().lock().expect("stage log poisoned");
    log.events.clear();
    log.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Obs-flag and registry tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn planes_record_and_report() {
        let mut p = NodePlanes::for_ids(vec![7, 3, 3, 11]);
        assert_eq!(p.ids(), &[3, 7, 11]);
        let s7 = p.slot(7).unwrap();
        p.record_tx(s7, 3, 10.0);
        p.record_retries(s7, 2);
        p.record_drop(s7);
        let s11 = p.slot(11).unwrap();
        p.record_rx(s11, 4.5);
        p.add_rounds(1);
        assert_eq!(p.msgs_tx()[s7], 3);
        assert_eq!(p.retries()[s7], 2);
        assert_eq!(p.drops()[s7], 1);
        assert_eq!(p.msgs_rx()[s11], 1);
        assert!((p.energy_uj(s7) - 30.0).abs() < 1e-12);
        assert!((p.battery_uj(s7, 100.0) - 70.0).abs() < 1e-12);
        assert_eq!(p.battery_uj(s7, 1.0), 0.0, "battery clamps at zero");
        assert_eq!(p.rounds(), 1);
        assert!(!p.is_zero());
        p.clear();
        assert!(p.is_zero());
        assert_eq!(p.ids(), &[3, 7, 11], "clear keeps the universe");
    }

    #[test]
    fn planes_merge_aligns_by_id_and_scales() {
        let mut a = NodePlanes::for_ids(vec![1, 2]);
        a.record_tx(0, 1, 2.0);
        a.add_rounds(1);
        let mut b = NodePlanes::for_ids(vec![2, 9]);
        b.record_tx(1, 4, 0.5);
        b.record_rx(0, 1.0);
        b.add_rounds(1);
        a.merge_scaled(&b, 3);
        assert_eq!(a.ids(), &[1, 2, 9]);
        let s1 = a.slot(1).unwrap();
        let s2 = a.slot(2).unwrap();
        let s9 = a.slot(9).unwrap();
        assert_eq!(a.msgs_tx()[s1], 1);
        assert_eq!(a.msgs_rx()[s2], 3, "scaled by 3");
        assert_eq!(a.msgs_tx()[s9], 12);
        assert!((a.energy_tx_uj()[s9] - 6.0).abs() < 1e-12);
        assert_eq!(a.rounds(), 4);
    }

    #[test]
    fn plane_registry_merges_and_resets() {
        let _g = lock();
        reset_planes();
        let mut local = NodePlanes::for_ids(vec![5]);
        local.record_tx(0, 2, 1.0);
        merge_planes(&mut local);
        assert!(local.is_zero(), "flush clears the local");
        // A zero local flush is a no-op (no lock-side effects to see).
        merge_planes(&mut local);
        let snap = planes_snapshot();
        assert_eq!(snap.msgs_tx()[snap.slot(5).unwrap()], 2);
        let mut template = NodePlanes::for_ids(vec![5]);
        template.record_rx(0, 3.0);
        template.add_rounds(1);
        merge_planes_scaled(&template, 10);
        let snap = planes_snapshot();
        assert_eq!(snap.msgs_rx()[snap.slot(5).unwrap()], 10);
        assert_eq!(snap.rounds(), 10);
        reset_planes();
        assert!(planes_snapshot().is_empty());
    }

    #[test]
    fn event_ring_keeps_newest_and_counts_losses() {
        let mut ring = EventRing::new(3);
        let mk = |round| Event {
            round,
            kind: EventKind::LinkDrop,
            a: 1,
            b: 2,
            value: round,
        };
        for r in 0..5 {
            ring.push(mk(r));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 2);
        let rounds: Vec<u64> = ring.iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![2, 3, 4], "newest three, oldest first");
        let json = ring.to_json().render();
        assert!(json.contains("\"link_drop\""));
    }

    #[test]
    fn event_json_omits_absent_operands() {
        let e = Event {
            round: 9,
            kind: EventKind::Reroute,
            a: NO_NODE,
            b: NO_NODE,
            value: 0,
        };
        let json = e.to_json().render();
        assert!(json.contains("\"reroute\""));
        assert!(!json.contains("\"a\""));
    }

    #[test]
    fn stage_spans_record_only_when_enabled() {
        let _g = lock();
        set_obs_enabled(false);
        reset_stage_spans();
        drop(stage_span(STAGE_ROUTE));
        assert_eq!(stage_span_count(), 0);
        set_obs_enabled(true);
        {
            let _s = stage_span(STAGE_SOLVE);
            std::hint::black_box(3u64);
        }
        set_obs_enabled(false);
        assert_eq!(stage_span_count(), 1);
        let trace = chrome_trace().render();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"solve\""));
        assert!(trace.contains("\"ph\": \"X\""));
        reset_stage_spans();
        assert_eq!(stage_span_count(), 0);
    }

    #[test]
    fn obs_flag_toggles() {
        let _g = lock();
        set_obs_enabled(true);
        assert!(obs_enabled());
        set_obs_enabled(false);
        assert!(!obs_enabled());
    }
}
