//! Property tests for the simulator substrate: deployments, radio graphs,
//! routing trees, and the failure model.

use std::collections::BTreeMap;

use proptest::prelude::*;

use m2m_graph::NodeId;
use m2m_netsim::failure::LinkFailureModel;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every sampled GDI-class deployment is connected, in-bounds, and
    /// reproducible from its seed.
    #[test]
    fn gdi_deployments_are_connected_and_deterministic(seed in 0u64..500) {
        let a = Deployment::great_duck_island(seed);
        let b = Deployment::great_duck_island(seed);
        prop_assert_eq!(a.positions(), b.positions());
        prop_assert!(a.radio_graph().is_connected());
        for p in a.positions() {
            prop_assert!(p.x >= 0.0 && p.x <= a.width_m());
            prop_assert!(p.y >= 0.0 && p.y <= a.height_m());
        }
    }

    /// Radio links are exactly the pairs within range (unit-disk model).
    #[test]
    fn radio_graph_matches_geometry(seed in 0u64..200) {
        let d = Deployment::connected_uniform(30, 80.0, 80.0, 40.0, seed);
        let g = d.radio_graph();
        for i in 0..d.node_count() {
            for j in (i + 1)..d.node_count() {
                let within = d.positions()[i].distance_to(&d.positions()[j])
                    <= d.radio_range_m();
                prop_assert_eq!(
                    g.has_edge(NodeId::from_index(i), NodeId::from_index(j)),
                    within
                );
            }
        }
    }

    /// In both routing modes, every tree: (i) spans exactly the requested
    /// reachable destinations, (ii) is minimal (every leaf is a
    /// destination), and (iii) uses only radio links in SPT mode.
    #[test]
    fn multicast_trees_are_minimal_spanners(
        seed in 0u64..100,
        raw_demands in prop::collection::btree_map(0u32..40, prop::collection::vec(0u32..40, 1..5), 1..6),
    ) {
        let net = Network::with_default_energy(Deployment::connected_uniform(
            40, 100.0, 100.0, 45.0, seed,
        ));
        let demands: BTreeMap<NodeId, Vec<NodeId>> = raw_demands
            .into_iter()
            .map(|(s, ds)| (NodeId(s), ds.into_iter().map(NodeId).collect()))
            .collect();
        for mode in [RoutingMode::ShortestPathTrees, RoutingMode::SharedSpanningTree] {
            let rt = RoutingTables::build(&net, &demands, mode);
            for (s, tree) in rt.trees() {
                let mut expected: Vec<NodeId> = demands[&s].clone();
                expected.sort_unstable();
                expected.dedup();
                prop_assert_eq!(tree.destinations(), &expected[..]);
                // Minimality: every leaf is a destination.
                for &v in tree.nodes() {
                    let is_leaf = tree.edges().all(|(p, _)| p != v);
                    if is_leaf && tree.size() > 1 {
                        prop_assert!(
                            tree.destinations().binary_search(&v).is_ok(),
                            "leaf {v} of tree {s} is not a destination"
                        );
                    }
                }
                // Real links only (both modes route over radio edges).
                for (a, b) in tree.edges() {
                    prop_assert!(net.graph().has_edge(a, b));
                }
                // Paths in SPT mode are shortest.
                if mode == RoutingMode::ShortestPathTrees {
                    for &d in tree.destinations() {
                        let path = tree.path_to(d).unwrap();
                        prop_assert_eq!(
                            (path.len() - 1) as u32,
                            net.hop_distance(s, d).unwrap()
                        );
                    }
                }
            }
        }
    }

    /// Failure model: deterministic, symmetric, and (statistically) close
    /// to its nominal probability.
    #[test]
    fn failure_model_properties(p in 0.0f64..1.0, seed in any::<u64>()) {
        let m = LinkFailureModel::new(p, seed);
        let mut down = 0u32;
        let trials = 2000u64;
        for r in 0..trials {
            let a = m.is_down(NodeId(1), NodeId(2), r);
            prop_assert_eq!(a, m.is_down(NodeId(2), NodeId(1), r));
            prop_assert_eq!(a, m.is_down(NodeId(1), NodeId(2), r));
            down += u32::from(a);
        }
        let rate = f64::from(down) / trials as f64;
        prop_assert!((rate - p).abs() < 0.06, "rate {rate} vs p {p}");
    }
}
