//! Oracle property tests for the packed routing forest.
//!
//! The flat [`m2m_netsim::RoutingForest`] replaced per-source
//! `MulticastTree` construction wholesale, so these tests pin it — mode
//! by mode, over random connected deployments — against the legacy
//! tree-at-a-time algorithms it displaced: `ShortestPathTree::prune_to`,
//! the global-spanning-tree re-root (ported verbatim below), and
//! Takahashi–Matsuyama. Every observable of a tree must agree: node
//! set, destination set, parent pointers, directed edge list, root
//! paths, and per-edge destination routing. A second property guards
//! the shared [`m2m_graph::RoutingScratch`] arena: building each source
//! alone (fresh scratch) must be bit-identical to the multi-source
//! build that reuses the arena across sources.

use std::collections::BTreeMap;

use proptest::prelude::*;

use m2m_graph::spt::{MulticastTree, ShortestPathTree};
use m2m_graph::NodeId;
use m2m_netsim::routing::TreeView;
use m2m_netsim::{Deployment, Network, RoutingMode, RoutingTables};

const ALL_MODES: [RoutingMode; 3] = [
    RoutingMode::ShortestPathTrees,
    RoutingMode::SharedSpanningTree,
    RoutingMode::SteinerTrees,
];

fn network(seed: u64) -> Network {
    Network::with_default_energy(Deployment::connected_uniform(40, 100.0, 100.0, 45.0, seed))
}

fn to_demands(raw: BTreeMap<u32, Vec<u32>>) -> BTreeMap<NodeId, Vec<NodeId>> {
    raw.into_iter()
        .map(|(s, ds)| (NodeId(s), ds.into_iter().map(NodeId).collect()))
        .collect()
}

/// The pre-forest shared-tree extraction, ported verbatim from the old
/// `RoutingTables::build`: mark the global tree paths source→destination
/// (splicing root paths at the LCA), then re-root the induced subtree at
/// the source with a BFS over the kept nodes.
fn legacy_shared_subtree(
    net: &Network,
    global: &ShortestPathTree,
    source: NodeId,
    destinations: &[NodeId],
) -> MulticastTree {
    let n = net.node_count();
    let mut tree_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in net.nodes() {
        if let Some(p) = global.parent(v) {
            tree_adj[v.index()].push(p);
            tree_adj[p.index()].push(v);
        }
    }
    let mut keep = vec![false; n];
    keep[source.index()] = true;
    let mut reached = Vec::new();
    for &d in destinations {
        let (Some(ps), Some(pd)) = (global.path_to(source), global.path_to(d)) else {
            continue;
        };
        reached.push(d);
        let mut lca_idx = 0;
        while lca_idx + 1 < ps.len() && lca_idx + 1 < pd.len() && ps[lca_idx + 1] == pd[lca_idx + 1]
        {
            lca_idx += 1;
        }
        for &v in &ps[lca_idx..] {
            keep[v.index()] = true;
        }
        for &v in &pd[lca_idx..] {
            keep[v.index()] = true;
        }
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in &tree_adj[u.index()] {
            if keep[v.index()] && !visited[v.index()] {
                visited[v.index()] = true;
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    MulticastTree::from_parents(source, parent, reached)
}

/// Legacy tree-at-a-time construction for a whole demand set.
fn legacy_trees(
    net: &Network,
    demands: &BTreeMap<NodeId, Vec<NodeId>>,
    mode: RoutingMode,
) -> BTreeMap<NodeId, MulticastTree> {
    match mode {
        RoutingMode::ShortestPathTrees => demands
            .iter()
            .map(|(&s, dests)| (s, ShortestPathTree::build(net.graph(), s).prune_to(dests)))
            .collect(),
        RoutingMode::SharedSpanningTree => {
            let global = ShortestPathTree::build(net.graph(), NodeId(0));
            demands
                .iter()
                .map(|(&s, dests)| (s, legacy_shared_subtree(net, &global, s, dests)))
                .collect()
        }
        RoutingMode::SteinerTrees => demands
            .iter()
            .map(|(&s, dests)| {
                (
                    s,
                    m2m_graph::steiner::takahashi_matsuyama(net.graph(), s, dests),
                )
            })
            .collect(),
    }
}

/// Every observable of the packed view must match the legacy tree.
fn assert_view_matches(s: NodeId, view: TreeView<'_>, oracle: &MulticastTree) {
    assert_eq!(view.root(), oracle.root(), "root of tree {s}");
    assert_eq!(view.size(), oracle.size(), "size of tree {s}");
    assert_eq!(view.nodes(), oracle.nodes(), "node set of tree {s}");
    assert_eq!(
        view.destinations(),
        oracle.destinations(),
        "destinations of tree {s}"
    );
    for &v in view.nodes() {
        assert_eq!(
            view.parent(v),
            oracle.parent(v),
            "parent of {v} in tree {s}"
        );
    }
    assert_eq!(
        view.edges().collect::<Vec<_>>(),
        oracle.edges().collect::<Vec<_>>(),
        "directed edges of tree {s}"
    );
    for &d in oracle.destinations() {
        assert_eq!(view.path_to(d), oracle.path_to(d), "path {s}→{d}");
    }
    for (a, b) in oracle.edges() {
        assert_eq!(
            view.destinations_through(a, b),
            oracle.destinations_through(a, b),
            "destinations through ({a}, {b}) in tree {s}"
        );
    }
}

fn demand_strategy() -> impl Strategy<Value = BTreeMap<u32, Vec<u32>>> {
    prop::collection::btree_map(0u32..40, prop::collection::vec(0u32..40, 1..6), 1..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Packed forest ≡ legacy per-source trees in all three modes.
    #[test]
    fn forest_matches_legacy_trees(
        seed in 0u64..100,
        raw_demands in demand_strategy(),
    ) {
        let net = network(seed);
        let demands = to_demands(raw_demands);
        for mode in ALL_MODES {
            let rt = RoutingTables::build(&net, &demands, mode);
            let oracle = legacy_trees(&net, &demands, mode);
            prop_assert_eq!(rt.source_count(), oracle.len());
            for (s, tree) in &oracle {
                let view = rt.tree(*s).expect("forest has every demanded source");
                assert_view_matches(*s, view, tree);
            }
            // The deduplicated directed-edge union must also agree.
            let mut expected: Vec<(NodeId, NodeId)> =
                oracle.values().flat_map(MulticastTree::edges).collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(rt.directed_edges(), &expected[..], "mode {:?}", mode);
        }
    }

    /// Scratch-arena reuse regression: one build reuses a single
    /// `RoutingScratch` across all sources; building each source by
    /// itself resets from a fresh arena. The trees must be bit-identical,
    /// or the epoch-stamp reset is leaking state between sources.
    #[test]
    fn arena_reuse_matches_fresh_per_source_builds(
        seed in 0u64..100,
        raw_demands in demand_strategy(),
    ) {
        let net = network(seed);
        let demands = to_demands(raw_demands);
        for mode in ALL_MODES {
            let combined = RoutingTables::build(&net, &demands, mode);
            for (s, dests) in &demands {
                let solo_demand: BTreeMap<NodeId, Vec<NodeId>> =
                    [(*s, dests.clone())].into();
                let solo = RoutingTables::build(&net, &solo_demand, mode);
                let combined_view = combined.tree(*s).expect("source routed");
                let solo_view = solo.tree(*s).expect("source routed");
                prop_assert_eq!(combined_view.nodes(), solo_view.nodes());
                prop_assert_eq!(combined_view.destinations(), solo_view.destinations());
                for &v in combined_view.nodes() {
                    prop_assert_eq!(combined_view.parent(v), solo_view.parent(v));
                }
            }
        }
    }
}
