//! Sensor-network simulator substrate for many-to-many aggregation.
//!
//! The paper evaluates on "a simulation of a network of Mica2 motes" (§4):
//! fixed-location nodes, a 50 m radio range, a generic MAC layer, and an
//! energy metric that charges both sending and receiving, with a fixed
//! per-message header followed by the body. This crate rebuilds that
//! substrate:
//!
//! * [`position`] / [`deployment`] — node placement: a synthetic stand-in
//!   for the 2003 Great Duck Island layout (68 nodes, 106×203 m²), uniform
//!   and grid layouts, and the scaled series used by the network-size
//!   experiment (Figure 6),
//! * [`network`] — the unit-disk radio connectivity graph,
//! * [`energy`] — the Mica2-class energy model (per-message header cost +
//!   per-byte send/receive cost, unicast and broadcast accounting),
//! * [`routing`] — per-source multicast trees (the paper's "standard
//!   algorithm") plus a strict shared-spanning-tree mode that satisfies the
//!   §2.1 path-sharing restriction by construction,
//! * [`forest`] — the flat CSR slab packing of all those trees
//!   ([`RoutingForest`]/[`TreeView`]), sized by Σ|T_s| rather than
//!   `sources × nodes`,
//! * [`failure`] — seeded transient link-failure injection used by the
//!   milestone-routing experiments, plus the [`DeliveryModel`] /
//!   [`FailureTrace`] per-frame delivery oracles behind the fault-aware
//!   executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod energy;
pub mod failure;
pub mod forest;
pub mod network;
pub mod position;
pub mod quality;
pub mod routing;

pub use deployment::Deployment;
pub use energy::EnergyModel;
pub use failure::{DeliveryModel, FailureTrace, LinkFailureModel};
pub use forest::{RoutingForest, TreeView};
pub use network::Network;
pub use position::Position;
pub use quality::LinkQuality;
pub use routing::{RoutingMode, RoutingTables};
