//! Transient link-failure injection.
//!
//! §3 motivates milestone routing with routes that are "susceptible to
//! transient failures": a link may be down for a round and recover later.
//! The models here are deterministic given a seed — reproducibility is a
//! hard requirement for the fault-tolerant executor, whose outcomes are
//! digest-compared across runs and thread counts.
//!
//! Three delivery models are provided behind one dispatch type,
//! [`DeliveryModel`]:
//!
//! * [`LinkFailureModel`] — uniform per-(link, tick) Bernoulli loss,
//! * a per-link Bernoulli map derived from [`crate::quality::LinkQuality`]
//!   (lossier links drop more frames, matching their ETX),
//! * [`FailureTrace`] — scripted down-intervals for exact replay of a
//!   specific failure scenario.

use std::collections::BTreeMap;

use m2m_graph::NodeId;

use crate::quality::LinkQuality;

/// Independent per-(link, round) Bernoulli failures.
#[derive(Clone, Copy, Debug)]
pub struct LinkFailureModel {
    /// Probability a given link is down in a given round.
    pub failure_probability: f64,
    /// Seed decorrelating this model from other randomness.
    pub seed: u64,
}

impl LinkFailureModel {
    /// A model in which links never fail.
    pub const fn reliable() -> Self {
        LinkFailureModel {
            failure_probability: 0.0,
            seed: 0,
        }
    }

    /// Creates a model with the given failure probability.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn new(failure_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&failure_probability),
            "failure probability must be in [0, 1]"
        );
        LinkFailureModel {
            failure_probability,
            seed,
        }
    }

    /// Returns true if the undirected link `{a, b}` is down in `round`.
    /// Symmetric in `a` and `b`.
    pub fn is_down(&self, a: NodeId, b: NodeId, round: u64) -> bool {
        if self.failure_probability <= 0.0 {
            return false;
        }
        if self.failure_probability >= 1.0 {
            return true;
        }
        link_tick_unit(a, b, round, self.seed) < self.failure_probability
    }
}

/// Maps a (link, tick, seed) triple to a uniform value in `[0, 1)` with
/// 53-bit precision; symmetric in the endpoints.
fn link_tick_unit(a: NodeId, b: NodeId, tick: u64, seed: u64) -> f64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for word in [u64::from(lo), u64::from(hi), tick] {
        h ^= word;
        h = splitmix64(h);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A scripted failure schedule: each undirected link is down during an
/// explicit set of half-open tick intervals `[from, until)`. Unlike the
/// Bernoulli models, a trace replays one *specific* scenario — the same
/// partition at the same tick every run, independent of any seed — which
/// is what the resilience benchmarks commit to disk.
#[derive(Clone, Debug, Default)]
pub struct FailureTrace {
    /// Down intervals per undirected link, keyed `(min, max)`.
    down: BTreeMap<(NodeId, NodeId), Vec<(u64, u64)>>,
}

impl FailureTrace {
    /// An empty trace (no link ever fails).
    pub fn new() -> Self {
        FailureTrace::default()
    }

    /// Marks link `{a, b}` down for ticks `from..until` (half-open).
    /// Builder-style; intervals may overlap.
    ///
    /// # Panics
    /// Panics if `from >= until` (an empty interval is a scripting bug).
    #[must_use]
    pub fn down(mut self, a: NodeId, b: NodeId, from: u64, until: u64) -> Self {
        assert!(from < until, "empty down interval [{from}, {until})");
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.down.entry(key).or_default().push((from, until));
        self
    }

    /// True if link `{a, b}` is scripted down at `tick`.
    pub fn is_down(&self, a: NodeId, b: NodeId, tick: u64) -> bool {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.down
            .get(&key)
            .is_some_and(|iv| iv.iter().any(|&(from, until)| from <= tick && tick < until))
    }

    /// Number of links with at least one scripted down interval.
    pub fn link_count(&self) -> usize {
        self.down.len()
    }
}

/// A per-(link, tick) delivery oracle: the one question the fault-aware
/// executor asks — "does a frame sent on `{a, b}` at `tick` get through?"
/// — answered deterministically by one of three models.
#[derive(Clone, Debug)]
pub enum DeliveryModel {
    /// Uniform Bernoulli loss: every link drops with the same probability.
    Bernoulli(LinkFailureModel),
    /// Per-link Bernoulli loss (each link drops with its own probability,
    /// typically its [`LinkQuality`] loss).
    PerLink {
        /// Loss probability per undirected link, keyed `(min, max)`.
        /// Links absent from the map never drop.
        loss: BTreeMap<(NodeId, NodeId), f64>,
        /// Seed decorrelating drops from other randomness.
        seed: u64,
    },
    /// Scripted down intervals.
    Trace(FailureTrace),
}

impl DeliveryModel {
    /// Every frame is delivered.
    pub fn reliable() -> Self {
        DeliveryModel::Bernoulli(LinkFailureModel::reliable())
    }

    /// Uniform loss probability `p` on every link.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn uniform(p: f64, seed: u64) -> Self {
        DeliveryModel::Bernoulli(LinkFailureModel::new(p, seed))
    }

    /// Per-link loss taken from a [`LinkQuality`] map: each link drops
    /// frames with exactly its modeled loss probability, so ETX and
    /// realized retransmission counts agree in expectation.
    pub fn from_quality(quality: &LinkQuality, seed: u64) -> Self {
        DeliveryModel::PerLink {
            loss: quality.links().collect(),
            seed,
        }
    }

    /// A scripted trace.
    pub fn trace(trace: FailureTrace) -> Self {
        DeliveryModel::Trace(trace)
    }

    /// True if a frame sent on link `{a, b}` at `tick` is lost.
    /// Deterministic and symmetric in the endpoints.
    pub fn is_down(&self, a: NodeId, b: NodeId, tick: u64) -> bool {
        match self {
            DeliveryModel::Bernoulli(m) => m.is_down(a, b, tick),
            DeliveryModel::PerLink { loss, seed } => {
                let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
                let p = loss.get(&key).copied().unwrap_or(0.0);
                if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    link_tick_unit(a, b, tick, *seed) < p
                }
            }
            DeliveryModel::Trace(t) => t.is_down(a, b, tick),
        }
    }

    /// True if no frame can ever be lost under this model (used to skip
    /// fault bookkeeping entirely on the lossless fast path).
    pub fn is_reliable(&self) -> bool {
        match self {
            DeliveryModel::Bernoulli(m) => m.failure_probability <= 0.0,
            DeliveryModel::PerLink { loss, .. } => loss.values().all(|&p| p <= 0.0),
            DeliveryModel::Trace(t) => t.down.is_empty(),
        }
    }
}

/// SplitMix64 finalizer — a tiny, well-distributed integer hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_model_never_fails() {
        let m = LinkFailureModel::reliable();
        for r in 0..100 {
            assert!(!m.is_down(NodeId(1), NodeId(2), r));
        }
    }

    #[test]
    fn certain_failure_always_fails() {
        let m = LinkFailureModel::new(1.0, 3);
        assert!(m.is_down(NodeId(0), NodeId(1), 0));
    }

    #[test]
    fn symmetric_in_endpoints() {
        let m = LinkFailureModel::new(0.5, 9);
        for r in 0..50 {
            assert_eq!(
                m.is_down(NodeId(3), NodeId(8), r),
                m.is_down(NodeId(8), NodeId(3), r)
            );
        }
    }

    #[test]
    fn empirical_rate_close_to_p() {
        let m = LinkFailureModel::new(0.3, 77);
        let trials = 20_000;
        let mut down = 0;
        for r in 0..trials {
            if m.is_down(NodeId(0), NodeId(1), r) {
                down += 1;
            }
        }
        let rate = down as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} too far from 0.3");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LinkFailureModel::new(0.4, 5);
        let b = LinkFailureModel::new(0.4, 5);
        for r in 0..100 {
            assert_eq!(
                a.is_down(NodeId(2), NodeId(4), r),
                b.is_down(NodeId(2), NodeId(4), r)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn invalid_probability_panics() {
        LinkFailureModel::new(1.5, 0);
    }

    #[test]
    fn trace_intervals_are_half_open_and_symmetric() {
        let t =
            FailureTrace::new()
                .down(NodeId(4), NodeId(1), 3, 6)
                .down(NodeId(1), NodeId(4), 10, 11);
        assert!(!t.is_down(NodeId(1), NodeId(4), 2));
        assert!(t.is_down(NodeId(1), NodeId(4), 3));
        assert!(t.is_down(NodeId(4), NodeId(1), 5));
        assert!(!t.is_down(NodeId(1), NodeId(4), 6));
        assert!(t.is_down(NodeId(1), NodeId(4), 10));
        assert!(!t.is_down(NodeId(1), NodeId(4), 11));
        assert_eq!(t.link_count(), 1);
        assert!(
            !t.is_down(NodeId(0), NodeId(1), 4),
            "unscripted link stays up"
        );
    }

    #[test]
    #[should_panic(expected = "empty down interval")]
    fn empty_trace_interval_panics() {
        let _ = FailureTrace::new().down(NodeId(0), NodeId(1), 5, 5);
    }

    #[test]
    fn delivery_model_reliable_and_uniform_match_bernoulli() {
        let reliable = DeliveryModel::reliable();
        assert!(reliable.is_reliable());
        let uniform = DeliveryModel::uniform(0.5, 9);
        assert!(!uniform.is_reliable());
        let raw = LinkFailureModel::new(0.5, 9);
        for tick in 0..200 {
            assert!(!reliable.is_down(NodeId(0), NodeId(1), tick));
            assert_eq!(
                uniform.is_down(NodeId(3), NodeId(8), tick),
                raw.is_down(NodeId(3), NodeId(8), tick)
            );
        }
    }

    #[test]
    fn per_link_model_respects_individual_probabilities() {
        let mut loss = BTreeMap::new();
        loss.insert((NodeId(0), NodeId(1)), 0.0);
        loss.insert((NodeId(1), NodeId(2)), 1.0);
        loss.insert((NodeId(2), NodeId(3)), 0.4);
        let m = DeliveryModel::PerLink { loss, seed: 21 };
        let mut drops = 0u32;
        for tick in 0..5_000 {
            assert!(!m.is_down(NodeId(0), NodeId(1), tick));
            assert!(
                m.is_down(NodeId(2), NodeId(1), tick),
                "p=1 link always down"
            );
            // Unknown links never drop.
            assert!(!m.is_down(NodeId(7), NodeId(9), tick));
            if m.is_down(NodeId(2), NodeId(3), tick) {
                drops += 1;
            }
        }
        let rate = f64::from(drops) / 5_000.0;
        assert!((rate - 0.4).abs() < 0.03, "rate {rate} too far from 0.4");
    }

    #[test]
    fn trace_model_is_exactly_reproducible() {
        let build = || DeliveryModel::trace(FailureTrace::new().down(NodeId(2), NodeId(5), 1, 4));
        let (a, b) = (build(), build());
        assert!(!a.is_reliable());
        for tick in 0..10 {
            assert_eq!(
                a.is_down(NodeId(2), NodeId(5), tick),
                b.is_down(NodeId(2), NodeId(5), tick)
            );
        }
    }
}
