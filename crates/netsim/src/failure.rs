//! Transient link-failure injection.
//!
//! §3 motivates milestone routing with routes that are "susceptible to
//! transient failures": a link may be down for a round and recover later.
//! The model here is deterministic given a seed — each (link, round) pair
//! fails independently with probability `p` — so experiments are exactly
//! reproducible.

use m2m_graph::NodeId;

/// Independent per-(link, round) Bernoulli failures.
#[derive(Clone, Copy, Debug)]
pub struct LinkFailureModel {
    /// Probability a given link is down in a given round.
    pub failure_probability: f64,
    /// Seed decorrelating this model from other randomness.
    pub seed: u64,
}

impl LinkFailureModel {
    /// A model in which links never fail.
    pub const fn reliable() -> Self {
        LinkFailureModel {
            failure_probability: 0.0,
            seed: 0,
        }
    }

    /// Creates a model with the given failure probability.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn new(failure_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&failure_probability),
            "failure probability must be in [0, 1]"
        );
        LinkFailureModel {
            failure_probability,
            seed,
        }
    }

    /// Returns true if the undirected link `{a, b}` is down in `round`.
    /// Symmetric in `a` and `b`.
    pub fn is_down(&self, a: NodeId, b: NodeId, round: u64) -> bool {
        if self.failure_probability <= 0.0 {
            return false;
        }
        if self.failure_probability >= 1.0 {
            return true;
        }
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for word in [u64::from(lo), u64::from(hi), round] {
            h ^= word;
            h = splitmix64(h);
        }
        // Map to [0, 1) with 53-bit precision.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.failure_probability
    }
}

/// SplitMix64 finalizer — a tiny, well-distributed integer hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_model_never_fails() {
        let m = LinkFailureModel::reliable();
        for r in 0..100 {
            assert!(!m.is_down(NodeId(1), NodeId(2), r));
        }
    }

    #[test]
    fn certain_failure_always_fails() {
        let m = LinkFailureModel::new(1.0, 3);
        assert!(m.is_down(NodeId(0), NodeId(1), 0));
    }

    #[test]
    fn symmetric_in_endpoints() {
        let m = LinkFailureModel::new(0.5, 9);
        for r in 0..50 {
            assert_eq!(
                m.is_down(NodeId(3), NodeId(8), r),
                m.is_down(NodeId(8), NodeId(3), r)
            );
        }
    }

    #[test]
    fn empirical_rate_close_to_p() {
        let m = LinkFailureModel::new(0.3, 77);
        let trials = 20_000;
        let mut down = 0;
        for r in 0..trials {
            if m.is_down(NodeId(0), NodeId(1), r) {
                down += 1;
            }
        }
        let rate = down as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} too far from 0.3");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LinkFailureModel::new(0.4, 5);
        let b = LinkFailureModel::new(0.4, 5);
        for r in 0..100 {
            assert_eq!(
                a.is_down(NodeId(2), NodeId(4), r),
                b.is_down(NodeId(2), NodeId(4), r)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn invalid_probability_panics() {
        LinkFailureModel::new(1.5, 0);
    }
}
