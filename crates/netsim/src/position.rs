//! 2-D node positions.

/// A node location in meters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    #[inline]
    pub fn distance_to(&self, other: &Position) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Position::new(1.5, -2.0);
        let b = Position::new(-3.0, 7.25);
        assert_eq!(a.distance_to(&b), b.distance_to(&a));
        assert_eq!(a.distance_to(&a), 0.0);
    }
}
