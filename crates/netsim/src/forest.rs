//! Flat-slab routing forests.
//!
//! The legacy routing state stored one [`MulticastTree`] per source in a
//! `BTreeMap`, each tree carrying a node-count-sized parent vector. At
//! 10k nodes × 10k sources that is ~800 MB of mostly-`None` parents and
//! one heap allocation per tree — the dominant cost of plan builds. A
//! [`RoutingForest`] packs *all* trees into six shared slabs in CSR
//! (compressed sparse row) form:
//!
//! ```text
//! sources:    [s0, s1, ...]                     ascending source ids
//! node_start: [0, |T0|, |T0|+|T1|, ...]         per-tree node ranges
//! nodes:      [tree0 nodes asc | tree1 ... ]    member ids, ascending per tree
//! parent_pos: [tree0 parents   | tree1 ... ]    parent as *local position*
//! dest_start: [0, |D0|, ...]                    per-tree destination ranges
//! dests:      [tree0 dests     | tree1 ... ]    sorted per tree
//! ```
//!
//! Storage is proportional to Σ|T_s| (the paper's Theorem 3 state bound)
//! instead of `sources × n`, and a whole forest is six allocations.
//! [`TreeView`] is a `Copy` window over one tree's rows exposing the full
//! `MulticastTree` read API (`parent`, `path_to`, `edges`,
//! `destinations_through`, …), so plan construction, validation, and the
//! executors are agnostic to the storage change.
//!
//! The three construction modes of [`crate::routing::RoutingMode`] build
//! directly into the slabs through one shared [`m2m_graph::RoutingScratch`]
//! arena; each is written to be step-for-step equivalent to the
//! tree-at-a-time construction it replaces (see the per-function notes —
//! the property tests in `tests/routing_forest.rs` pin the equivalence
//! over random deployments).

use std::collections::BTreeMap;

use m2m_graph::adjacency::CsrAdjacency;
use m2m_graph::spt::{MulticastTree, ShortestPathTree};
use m2m_graph::{Graph, NodeId, RoutingScratch};

/// `parent_pos` sentinel: the node is its tree's root.
const ROOT: u32 = u32::MAX;

/// All multicast trees of a workload, packed into shared CSR slabs.
/// See the module docs for the layout.
#[derive(Clone, Debug, Default)]
pub struct RoutingForest {
    sources: Vec<NodeId>,
    node_start: Vec<u32>,
    nodes: Vec<NodeId>,
    parent_pos: Vec<u32>,
    dest_start: Vec<u32>,
    dests: Vec<NodeId>,
}

impl RoutingForest {
    /// Converts per-source [`MulticastTree`]s (e.g. the virtual trees of
    /// milestone routing or link-quality routing) into forest form.
    pub fn from_trees(trees: &BTreeMap<NodeId, MulticastTree>) -> Self {
        let mut builder = ForestBuilder::new(trees.len());
        for (&s, t) in trees {
            builder.push_tree(s, t.nodes(), |v| t.parent(v), t.destinations());
        }
        builder.finish()
    }

    /// Number of trees (sources) in the forest.
    #[inline]
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// The sources with routing state, ascending.
    #[inline]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The tree rooted at `source`, if present.
    pub fn tree(&self, source: NodeId) -> Option<TreeView<'_>> {
        let idx = self.sources.binary_search(&source).ok()?;
        Some(self.tree_at(idx))
    }

    /// The tree at position `idx` in source order.
    pub fn tree_at(&self, idx: usize) -> TreeView<'_> {
        let nr = self.node_start[idx] as usize..self.node_start[idx + 1] as usize;
        let dr = self.dest_start[idx] as usize..self.dest_start[idx + 1] as usize;
        TreeView {
            root: self.sources[idx],
            nodes: &self.nodes[nr.clone()],
            parent_pos: &self.parent_pos[nr],
            destinations: &self.dests[dr],
        }
    }

    /// Iterator over `(source, tree)` pairs in ascending source order.
    pub fn trees(&self) -> impl Iterator<Item = (NodeId, TreeView<'_>)> {
        (0..self.sources.len()).map(|i| (self.sources[i], self.tree_at(i)))
    }

    /// Sum of tree sizes, the paper's `Σ|T_s|` (Theorem 3).
    #[inline]
    pub fn total_tree_size(&self) -> usize {
        self.nodes.len()
    }

    /// Resident bytes of the forest slabs.
    pub fn slab_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sources.len() * size_of::<NodeId>()
            + self.node_start.len() * 4
            + self.nodes.len() * size_of::<NodeId>()
            + self.parent_pos.len() * 4
            + self.dest_start.len() * 4
            + self.dests.len() * size_of::<NodeId>()
    }
}

/// A read-only window over one tree of a [`RoutingForest`]. Mirrors the
/// query API of [`MulticastTree`]; being two slices wide, it is `Copy`.
#[derive(Clone, Copy, Debug)]
pub struct TreeView<'a> {
    root: NodeId,
    nodes: &'a [NodeId],
    parent_pos: &'a [u32],
    destinations: &'a [NodeId],
}

impl<'a> TreeView<'a> {
    /// The source at the root of the tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Nodes in the tree, ascending id order.
    #[inline]
    pub fn nodes(&self) -> &'a [NodeId] {
        self.nodes
    }

    /// Destinations spanned by the tree, sorted.
    #[inline]
    pub fn destinations(&self) -> &'a [NodeId] {
        self.destinations
    }

    /// Number of nodes in the tree (the paper's `|T_s|`, Theorem 3).
    #[inline]
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if `v` is in the tree.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Parent of `v` within the tree (`None` for the root or non-members).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let pos = self.nodes.binary_search(&v).ok()?;
        let pp = self.parent_pos[pos];
        (pp != ROOT).then(|| self.nodes[pp as usize])
    }

    /// Directed edges `(parent → child)` of the tree, in ascending child
    /// order (the order [`MulticastTree::edges`] produced).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + 'a {
        let nodes = self.nodes;
        self.parent_pos
            .iter()
            .enumerate()
            .filter(|&(_, &pp)| pp != ROOT)
            .map(move |(i, &pp)| (nodes[pp as usize], nodes[i]))
    }

    /// The root→`dest` path within the tree (inclusive), or `None` if
    /// `dest` is not a member.
    pub fn path_to(&self, dest: NodeId) -> Option<Vec<NodeId>> {
        let mut path = Vec::new();
        self.write_path_to(dest, &mut path).then_some(path)
    }

    /// Allocation-free variant of [`Self::path_to`]: replaces `out` with
    /// the root→`dest` path and returns `true`, or returns `false`
    /// (leaving `out` cleared) if `dest` is not a member.
    pub fn write_path_to(&self, dest: NodeId, out: &mut Vec<NodeId>) -> bool {
        out.clear();
        let Ok(mut pos) = self.nodes.binary_search(&dest) else {
            return false;
        };
        out.push(self.nodes[pos]);
        while self.parent_pos[pos] != ROOT {
            pos = self.parent_pos[pos] as usize;
            out.push(self.nodes[pos]);
        }
        out.reverse();
        true
    }

    /// Destinations whose root-path traverses the directed edge
    /// `tail→head` — the `s ~_e d` relation of §2.2 restricted to this
    /// tree.
    pub fn destinations_through(&self, tail: NodeId, head: NodeId) -> Vec<NodeId> {
        self.destinations
            .iter()
            .copied()
            .filter(|&d| {
                let Ok(mut pos) = self.nodes.binary_search(&d) else {
                    return false;
                };
                while self.parent_pos[pos] != ROOT {
                    let pp = self.parent_pos[pos] as usize;
                    if self.nodes[pp] == tail && self.nodes[pos] == head {
                        return true;
                    }
                    pos = pp;
                }
                false
            })
            .collect()
    }
}

/// Accumulates trees into forest slabs. Trees must be pushed in ascending
/// source order.
struct ForestBuilder {
    forest: RoutingForest,
}

impl ForestBuilder {
    fn new(sources_hint: usize) -> Self {
        let mut forest = RoutingForest {
            sources: Vec::with_capacity(sources_hint),
            node_start: Vec::with_capacity(sources_hint + 1),
            dest_start: Vec::with_capacity(sources_hint + 1),
            ..RoutingForest::default()
        };
        forest.node_start.push(0);
        forest.dest_start.push(0);
        ForestBuilder { forest }
    }

    /// Appends one tree. `members` must be ascending, `destinations`
    /// sorted and deduplicated, and `parent_of` must return a member for
    /// every non-root member.
    fn push_tree(
        &mut self,
        source: NodeId,
        members: &[NodeId],
        mut parent_of: impl FnMut(NodeId) -> Option<NodeId>,
        destinations: &[NodeId],
    ) {
        let f = &mut self.forest;
        debug_assert!(f.sources.last().is_none_or(|&prev| prev < source));
        f.sources.push(source);
        f.nodes.extend_from_slice(members);
        for &v in members {
            let pp = match parent_of(v) {
                None => ROOT,
                Some(p) => members
                    .binary_search(&p)
                    .unwrap_or_else(|_| panic!("parent {p} of {v} is not a tree member"))
                    as u32,
            };
            f.parent_pos.push(pp);
        }
        f.dests.extend_from_slice(destinations);
        f.node_start.push(f.nodes.len() as u32);
        f.dest_start.push(f.dests.len() as u32);
    }

    fn finish(self) -> RoutingForest {
        self.forest
    }
}

/// Builds the per-source pruned shortest-path-tree forest
/// ([`crate::routing::RoutingMode::ShortestPathTrees`]).
///
/// Equivalent to `ShortestPathTree::build(graph, s).prune_to(dests)` per
/// source: one arena BFS gives the same hop distances as
/// `bfs_distances`, the keep-set walk marks exactly the nodes
/// `prune_to` keeps (following the same canonical parents, computed on
/// demand via [`RoutingScratch::spt_parent`] instead of for all `n`
/// nodes up front), and destinations are the reachable targets, sorted.
pub fn build_spt_forest(graph: &Graph, demands: &BTreeMap<NodeId, Vec<NodeId>>) -> RoutingForest {
    let n = graph.node_count();
    let csr = CsrAdjacency::from_graph(graph);
    let mut scratch = RoutingScratch::new();
    let mut builder = ForestBuilder::new(demands.len());
    let mut kept: Vec<NodeId> = Vec::new();
    let mut reached: Vec<NodeId> = Vec::new();
    for (&s, targets) in demands {
        // Mark this source's targets and flood only until the farthest
        // one is discovered; distances and canonical parents along every
        // kept chain equal the full flood's (see `bfs_until_marked`).
        // An unreachable target simply never unmarks, degrading to the
        // full component flood the legacy build always paid.
        scratch.clear_marks(n);
        let mut pending = 0usize;
        for &d in targets {
            if scratch.mark(d) {
                pending += 1;
            }
        }
        scratch.bfs_until_marked(&csr, s, pending);
        scratch.clear_marks(n);
        kept.clear();
        reached.clear();
        for &d in targets {
            if scratch.dist(d).is_none() {
                continue;
            }
            reached.push(d);
            let mut cur = d;
            while scratch.mark(cur) {
                kept.push(cur);
                match scratch.spt_parent(&csr, cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        kept.sort_unstable();
        reached.sort_unstable();
        reached.dedup();
        builder.push_tree(s, &kept, |v| scratch.spt_parent(&csr, v), &reached);
    }
    builder.finish()
}

/// Builds the shared-spanning-tree forest
/// ([`crate::routing::RoutingMode::SharedSpanningTree`]): every tree is
/// the union of the unique global-tree paths source→destination,
/// re-rooted at the source.
///
/// Equivalent to the legacy per-source extract-and-BFS-re-root: the LCA
/// found by lifting to equal depth equals the longest-common-prefix
/// splice point of the two root paths, the marked node set is the same
/// path union, and because tree paths are unique the re-rooted parent of
/// a kept node is forced — the chain successor toward the source for the
/// source's ancestors (recorded in the arena's aux tags), the global
/// parent for everyone else — with no per-source adjacency or BFS.
pub fn build_shared_forest(
    graph: &Graph,
    demands: &BTreeMap<NodeId, Vec<NodeId>>,
) -> RoutingForest {
    let n = graph.node_count();
    let global = ShortestPathTree::build(graph, NodeId(0));
    let mut scratch = RoutingScratch::new();
    let mut builder = ForestBuilder::new(demands.len());
    let mut kept: Vec<NodeId> = Vec::new();
    let mut reached: Vec<NodeId> = Vec::new();
    for (&s, targets) in demands {
        scratch.clear_marks(n);
        // Tag every proper ancestor of `s` with its chain successor
        // toward `s`: the re-rooted parent along that chain.
        let mut child = s;
        while let Some(p) = global.parent(child) {
            scratch.set_aux(p, child.0);
            child = p;
        }
        kept.clear();
        reached.clear();
        scratch.mark(s);
        kept.push(s);
        if global.distance(s).is_some() {
            for &d in targets {
                let Some(dd) = global.distance(d) else {
                    continue;
                };
                reached.push(d);
                // Mark both root-paths down from the LCA, found by
                // lifting the deeper endpoint to equal depth and then
                // lifting both in lockstep.
                let (mut a, mut b) = (s, d);
                let (mut da, mut db) = (global.distance(s).expect("checked above"), dd);
                while da > db {
                    if scratch.mark(a) {
                        kept.push(a);
                    }
                    a = global.parent(a).expect("deeper node has a parent");
                    da -= 1;
                }
                while db > da {
                    if scratch.mark(b) {
                        kept.push(b);
                    }
                    b = global.parent(b).expect("deeper node has a parent");
                    db -= 1;
                }
                while a != b {
                    if scratch.mark(a) {
                        kept.push(a);
                    }
                    if scratch.mark(b) {
                        kept.push(b);
                    }
                    a = global
                        .parent(a)
                        .expect("distinct equal-depth nodes have parents");
                    b = global
                        .parent(b)
                        .expect("distinct equal-depth nodes have parents");
                }
                if scratch.mark(a) {
                    kept.push(a); // the LCA itself
                }
            }
        }
        kept.sort_unstable();
        reached.sort_unstable();
        reached.dedup();
        builder.push_tree(
            s,
            &kept,
            |v| {
                if v == s {
                    None
                } else if let Some(c) = scratch.aux(v) {
                    Some(NodeId(c))
                } else {
                    Some(
                        global
                            .parent(v)
                            .expect("kept non-ancestor has a global parent"),
                    )
                }
            },
            &reached,
        );
    }
    builder.finish()
}

/// Builds the Takahashi–Matsuyama Steiner forest
/// ([`crate::routing::RoutingMode::SteinerTrees`]).
///
/// Replicates [`m2m_graph::steiner::takahashi_matsuyama`] round for
/// round. The `via` pointer of that construction is *queue-order
/// dependent* (first discoverer wins), so the arena BFS seeds each round
/// with the in-tree nodes in ascending id order — exactly the legacy
/// `for i in 0..n` seeding — making the discovered paths, and therefore
/// the grown tree, identical.
pub fn build_steiner_forest(
    graph: &Graph,
    demands: &BTreeMap<NodeId, Vec<NodeId>>,
) -> RoutingForest {
    let n = graph.node_count();
    let csr = CsrAdjacency::from_graph(graph);
    let mut scratch = RoutingScratch::new();
    let mut builder = ForestBuilder::new(demands.len());
    let mut kept: Vec<NodeId> = Vec::new();
    let mut reached: Vec<NodeId> = Vec::new();
    let mut parents: Vec<(NodeId, NodeId)> = Vec::new();
    for (&s, targets) in demands {
        scratch.clear_marks(n);
        kept.clear();
        reached.clear();
        parents.clear();
        scratch.mark(s);
        kept.push(s);
        let mut remaining: Vec<NodeId> = targets.iter().copied().filter(|&t| t != s).collect();
        remaining.sort_unstable();
        remaining.dedup();
        if targets.contains(&s) {
            reached.push(s);
        }
        while !remaining.is_empty() {
            // `kept` is maintained in ascending order, so the seed queue
            // matches the legacy 0..n in-tree scan.
            scratch.bfs_from_seeds(&csr, &kept);
            let Some((_, next)) = remaining
                .iter()
                .filter_map(|&t| scratch.dist(t).map(|d| (d, t)))
                .min()
            else {
                break; // every remaining terminal is unreachable
            };
            let mut cur = next;
            while !scratch.is_marked(cur) {
                let prev = scratch
                    .parent(cur)
                    .expect("reachable node has a BFS predecessor");
                parents.push((cur, prev));
                scratch.mark(cur);
                let at = kept.binary_search(&cur).unwrap_err();
                kept.insert(at, cur);
                cur = prev;
            }
            reached.push(next);
            remaining.retain(|&t| t != next);
        }
        parents.sort_unstable();
        reached.sort_unstable();
        reached.dedup();
        builder.push_tree(
            s,
            &kept,
            |v| {
                parents
                    .binary_search_by_key(&v, |&(c, _)| c)
                    .ok()
                    .map(|i| parents[i].1)
            },
            &reached,
        );
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2
    /// | | |
    /// 3-4-5
    fn grid() -> Graph {
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    fn demands(pairs: &[(u32, &[u32])]) -> BTreeMap<NodeId, Vec<NodeId>> {
        pairs
            .iter()
            .map(|&(s, ds)| (NodeId(s), ds.iter().map(|&d| NodeId(d)).collect()))
            .collect()
    }

    #[test]
    fn spt_forest_matches_prune_to() {
        let g = grid();
        let d = demands(&[(0, &[4, 2]), (3, &[2])]);
        let forest = build_spt_forest(&g, &d);
        for (&s, targets) in &d {
            let oracle = ShortestPathTree::build(&g, s).prune_to(targets);
            let view = forest.tree(s).unwrap();
            assert_eq!(view.nodes(), oracle.nodes());
            assert_eq!(view.destinations(), oracle.destinations());
            for &v in view.nodes() {
                assert_eq!(view.parent(v), oracle.parent(v), "source {s} node {v}");
            }
        }
    }

    #[test]
    fn tree_view_paths_and_edges() {
        let g = grid();
        let d = demands(&[(0, &[4, 2])]);
        let forest = build_spt_forest(&g, &d);
        let view = forest.tree(NodeId(0)).unwrap();
        let oracle = ShortestPathTree::build(&g, NodeId(0)).prune_to(&[NodeId(4), NodeId(2)]);
        assert_eq!(view.path_to(NodeId(4)), oracle.path_to(NodeId(4)));
        assert_eq!(view.path_to(NodeId(5)), None);
        assert_eq!(
            view.edges().collect::<Vec<_>>(),
            oracle.edges().collect::<Vec<_>>()
        );
        assert_eq!(
            view.destinations_through(NodeId(0), NodeId(1)),
            oracle.destinations_through(NodeId(0), NodeId(1))
        );
        let mut buf = vec![NodeId(9)];
        assert!(view.write_path_to(NodeId(2), &mut buf));
        assert_eq!(Some(buf), oracle.path_to(NodeId(2)));
    }

    #[test]
    fn from_trees_round_trips() {
        let g = grid();
        let trees: BTreeMap<NodeId, MulticastTree> = [(
            NodeId(1),
            ShortestPathTree::build(&g, NodeId(1)).prune_to(&[NodeId(3), NodeId(5)]),
        )]
        .into();
        let forest = RoutingForest::from_trees(&trees);
        let view = forest.tree(NodeId(1)).unwrap();
        let oracle = &trees[&NodeId(1)];
        assert_eq!(view.nodes(), oracle.nodes());
        assert_eq!(view.destinations(), oracle.destinations());
        assert_eq!(
            view.edges().collect::<Vec<_>>(),
            oracle.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_trivial_trees() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        // Source 0's only target is unreachable → empty tree (matching
        // prune_to); source 1 targets itself → single-node tree.
        let d = demands(&[(0, &[2]), (1, &[1])]);
        let forest = build_spt_forest(&g, &d);
        let empty = forest.tree(NodeId(0)).unwrap();
        assert_eq!(empty.size(), 0);
        assert_eq!(empty.destinations(), &[] as &[NodeId]);
        assert_eq!(empty.path_to(NodeId(0)), None);
        let trivial = forest.tree(NodeId(1)).unwrap();
        assert_eq!(trivial.nodes(), &[NodeId(1)]);
        assert_eq!(trivial.destinations(), &[NodeId(1)]);
        assert_eq!(trivial.path_to(NodeId(1)), Some(vec![NodeId(1)]));
        assert_eq!(trivial.edges().count(), 0);
        assert!(forest.tree(NodeId(2)).is_none());
    }
}
