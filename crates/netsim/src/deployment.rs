//! Node placement generators.
//!
//! The paper places nodes at "the coordinates of the 2003 deployment on
//! Great Duck Island, with some modification to filter out multiple nodes
//! at identical coordinates. The resulting configuration has 68 nodes in a
//! 106 × 203 m² area" (§4), with a 50 m radio range. The published
//! coordinates are not available, so [`Deployment::great_duck_island`]
//! generates a *seeded synthetic layout with the same node count, area,
//! aspect ratio, and radio range*, rejection-sampled until the radio graph
//! is connected. What the experiments exercise is the multi-hop topology
//! induced by density and range, which this preserves (see DESIGN.md,
//! "Substitutions").

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::position::Position;

/// The paper's radio range in meters (§4).
pub const PAPER_RADIO_RANGE_M: f64 = 50.0;

/// Node count of the (filtered) Great Duck Island configuration.
pub const GDI_NODE_COUNT: usize = 68;

/// Width of the Great Duck Island area (m).
pub const GDI_WIDTH_M: f64 = 106.0;

/// Height of the Great Duck Island area (m).
pub const GDI_HEIGHT_M: f64 = 203.0;

/// A set of fixed node locations within a rectangular area.
#[derive(Clone, Debug)]
pub struct Deployment {
    positions: Vec<Position>,
    width_m: f64,
    height_m: f64,
    radio_range_m: f64,
}

impl Deployment {
    /// Builds a deployment from explicit positions.
    pub fn from_positions(
        positions: Vec<Position>,
        width_m: f64,
        height_m: f64,
        radio_range_m: f64,
    ) -> Self {
        assert!(radio_range_m > 0.0, "radio range must be positive");
        Deployment {
            positions,
            width_m,
            height_m,
            radio_range_m,
        }
    }

    /// The synthetic Great Duck Island stand-in: 68 nodes in 106 × 203 m²
    /// with a 50 m radio range, rejection-sampled to be connected.
    ///
    /// ```
    /// use m2m_netsim::Deployment;
    ///
    /// let d = Deployment::great_duck_island(1);
    /// assert_eq!(d.node_count(), 68);
    /// assert!(d.radio_graph().is_connected());
    /// ```
    pub fn great_duck_island(seed: u64) -> Self {
        Self::connected_uniform(
            GDI_NODE_COUNT,
            GDI_WIDTH_M,
            GDI_HEIGHT_M,
            PAPER_RADIO_RANGE_M,
            seed,
        )
    }

    /// Uniform-random placement, resampled (up to 1000 attempts) until the
    /// radio graph is connected.
    ///
    /// # Panics
    /// Panics if no connected sample is found, which indicates the density
    /// is far too low for the requested range.
    pub fn connected_uniform(
        n: usize,
        width_m: f64,
        height_m: f64,
        radio_range_m: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..1000 {
            let positions: Vec<Position> = (0..n)
                .map(|_| {
                    Position::new(
                        rng.random_range(0.0..width_m),
                        rng.random_range(0.0..height_m),
                    )
                })
                .collect();
            let d = Deployment::from_positions(positions, width_m, height_m, radio_range_m);
            if d.radio_graph().is_connected() {
                return d;
            }
        }
        panic!(
            "could not sample a connected deployment: n={n}, area={width_m}x{height_m}, \
             range={radio_range_m}"
        );
    }

    /// Clustered placement: nodes gather around `clusters` seeded centers
    /// with Gaussian-ish spread, the way real forest deployments clump
    /// around stands of instrumented trees. Resampled until connected.
    ///
    /// # Panics
    /// Panics if no connected sample is found in 1000 attempts.
    pub fn clustered(
        n: usize,
        clusters: usize,
        width_m: f64,
        height_m: f64,
        spread_m: f64,
        radio_range_m: f64,
        seed: u64,
    ) -> Self {
        assert!(clusters >= 1, "need at least one cluster");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..1000 {
            let centers: Vec<Position> = (0..clusters)
                .map(|_| {
                    Position::new(
                        rng.random_range(0.2 * width_m..0.8 * width_m),
                        rng.random_range(0.2 * height_m..0.8 * height_m),
                    )
                })
                .collect();
            let positions: Vec<Position> = (0..n)
                .map(|i| {
                    let c = &centers[i % clusters];
                    // Sum of two uniforms ≈ triangular: a cheap Gaussian
                    // stand-in with bounded support.
                    let dx = (rng.random_range(-1.0..1.0f64) + rng.random_range(-1.0..1.0))
                        * spread_m
                        / 2.0;
                    let dy = (rng.random_range(-1.0..1.0f64) + rng.random_range(-1.0..1.0))
                        * spread_m
                        / 2.0;
                    Position::new(
                        (c.x + dx).clamp(0.0, width_m),
                        (c.y + dy).clamp(0.0, height_m),
                    )
                })
                .collect();
            let d = Deployment::from_positions(positions, width_m, height_m, radio_range_m);
            if d.radio_graph().is_connected() {
                return d;
            }
        }
        panic!(
            "could not sample a connected clustered deployment: n={n}, clusters={clusters}, \
             spread={spread_m}, range={radio_range_m}"
        );
    }

    /// Regular grid placement with the given spacing, useful for
    /// deterministic tests and worked examples.
    pub fn grid(cols: usize, rows: usize, spacing_m: f64, radio_range_m: f64) -> Self {
        let positions = (0..rows)
            .flat_map(|r| {
                (0..cols).map(move |c| Position::new(c as f64 * spacing_m, r as f64 * spacing_m))
            })
            .collect();
        Deployment {
            positions,
            width_m: (cols.max(1) - 1) as f64 * spacing_m,
            height_m: (rows.max(1) - 1) as f64 * spacing_m,
            radio_range_m,
        }
    }

    /// The Figure 6 series: networks of increasing node count with the area
    /// scaled to keep density constant (the paper: "a series of five
    /// simulated networks with increasing area and number of nodes",
    /// 50–250 nodes, 25% destinations, 15% of nodes as sources each).
    pub fn scaled_series(node_counts: &[usize], seed: u64) -> Vec<Deployment> {
        let base_density = GDI_NODE_COUNT as f64 / (GDI_WIDTH_M * GDI_HEIGHT_M);
        node_counts
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let area = n as f64 / base_density;
                // Keep the GDI aspect ratio as the area grows.
                let aspect = GDI_HEIGHT_M / GDI_WIDTH_M;
                let width = (area / aspect).sqrt();
                let height = width * aspect;
                Self::connected_uniform(
                    n,
                    width,
                    height,
                    PAPER_RADIO_RANGE_M,
                    seed.wrapping_add(i as u64),
                )
            })
            .collect()
    }

    /// Node positions, indexed by node id.
    #[inline]
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Deployment area width (m).
    #[inline]
    pub fn width_m(&self) -> f64 {
        self.width_m
    }

    /// Deployment area height (m).
    #[inline]
    pub fn height_m(&self) -> f64 {
        self.height_m
    }

    /// Radio range (m).
    #[inline]
    pub fn radio_range_m(&self) -> f64 {
        self.radio_range_m
    }

    /// Builds the unit-disk radio connectivity graph: nodes are linked iff
    /// within radio range.
    ///
    /// Candidate pairs come from a spatial hash with cells of radio-range
    /// side length (a node's neighbors all lie in its 3×3 cell block), so
    /// construction is near-linear in node count for the bounded-density
    /// deployments the scaled series produces — the exact pairwise scan is
    /// kept for small or degenerate (non-positive range) deployments. The
    /// produced edge *set* is identical either way, and `Graph::add_edge`
    /// keeps neighbor lists sorted regardless of insertion order, so
    /// everything downstream is unaffected.
    pub fn radio_graph(&self) -> m2m_graph::Graph {
        let n = self.positions.len();
        let mut g = m2m_graph::Graph::new(n);
        let range = self.radio_range_m;
        if n < 512 || range <= 0.0 {
            for i in 0..n {
                for j in (i + 1)..n {
                    if self.positions[i].distance_to(&self.positions[j]) <= range {
                        g.add_edge(
                            m2m_graph::NodeId::from_index(i),
                            m2m_graph::NodeId::from_index(j),
                        );
                    }
                }
            }
            return g;
        }
        let cell_of = |p: &Position| ((p.x / range).floor() as i64, (p.y / range).floor() as i64);
        let mut bins: std::collections::HashMap<(i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        for (i, p) in self.positions.iter().enumerate() {
            bins.entry(cell_of(p)).or_default().push(i as u32);
        }
        for (i, p) in self.positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(list) = bins.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in list {
                        if (j as usize) > i && self.positions[j as usize].distance_to(p) <= range {
                            g.add_edge(
                                m2m_graph::NodeId::from_index(i),
                                m2m_graph::NodeId::from_index(j as usize),
                            );
                        }
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gdi_layout_matches_paper_parameters() {
        let d = Deployment::great_duck_island(7);
        assert_eq!(d.node_count(), 68);
        assert_eq!(d.width_m(), GDI_WIDTH_M);
        assert_eq!(d.height_m(), GDI_HEIGHT_M);
        assert_eq!(d.radio_range_m(), PAPER_RADIO_RANGE_M);
        assert!(d.radio_graph().is_connected());
        for p in d.positions() {
            assert!(p.x >= 0.0 && p.x <= GDI_WIDTH_M);
            assert!(p.y >= 0.0 && p.y <= GDI_HEIGHT_M);
        }
    }

    #[test]
    fn gdi_layout_is_seed_deterministic() {
        let a = Deployment::great_duck_island(42);
        let b = Deployment::great_duck_island(42);
        assert_eq!(a.positions(), b.positions());
        let c = Deployment::great_duck_island(43);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn gdi_is_multi_hop() {
        // The paper's workloads draw sources from 1–4 hops away; the layout
        // must actually have multi-hop structure.
        let d = Deployment::great_duck_island(1);
        let g = d.radio_graph();
        let hops = m2m_graph::bfs::bfs_distances(&g, m2m_graph::NodeId(0));
        let max_hop = hops.iter().flatten().max().copied().unwrap();
        assert!(
            max_hop >= 3,
            "expected a multi-hop topology, max hop {max_hop}"
        );
    }

    #[test]
    fn grid_connectivity_depends_on_range() {
        let near = Deployment::grid(3, 3, 10.0, 10.5);
        assert!(near.radio_graph().is_connected());
        // Range below spacing: no links at all.
        let far = Deployment::grid(3, 3, 10.0, 9.5);
        assert_eq!(far.radio_graph().edge_count(), 0);
    }

    #[test]
    fn grid_diagonals_excluded_at_tight_range() {
        let d = Deployment::grid(2, 2, 10.0, 10.5);
        let g = d.radio_graph();
        // 4 side links, no diagonal (≈14.1 m).
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn clustered_layout_is_connected_and_clumped() {
        let d = Deployment::clustered(60, 4, 200.0, 200.0, 25.0, 60.0, 9);
        assert_eq!(d.node_count(), 60);
        assert!(d.radio_graph().is_connected());
        // Clumping: mean nearest-neighbor distance is far below the
        // uniform-random expectation (~½·sqrt(area/n) ≈ 12.9 m).
        let nn_mean: f64 = d
            .positions()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                d.positions()
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, q)| p.distance_to(q))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / 60.0;
        assert!(
            nn_mean < 10.0,
            "mean nearest neighbor {nn_mean:.1} m not clumped"
        );
    }

    #[test]
    fn clustered_layout_is_seed_deterministic() {
        let a = Deployment::clustered(40, 3, 150.0, 150.0, 20.0, 55.0, 4);
        let b = Deployment::clustered(40, 3, 150.0, 150.0, 20.0, 55.0, 4);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn scaled_series_keeps_density() {
        let series = Deployment::scaled_series(&[50, 100], 11);
        assert_eq!(series.len(), 2);
        let density = |d: &Deployment| d.node_count() as f64 / (d.width_m() * d.height_m());
        let base = GDI_NODE_COUNT as f64 / (GDI_WIDTH_M * GDI_HEIGHT_M);
        for d in &series {
            assert!((density(d) - base).abs() / base < 1e-9);
            assert!(d.radio_graph().is_connected());
        }
        assert!(series[1].width_m() > series[0].width_m());
    }
}
