//! Mica2-class radio energy model.
//!
//! §4: "We assume a generic MAC-layer protocol and measure the energy spent
//! on both sending and receiving. Each transmitted message includes a
//! header of fixed size, followed by the body."
//!
//! Costs are parameterized so experiments can sweep radio constants; the
//! defaults are derived from the Mica2's CC1000 radio (≈27 mA TX / 10 mA RX
//! at 3 V, 38.4 kbaud Manchester ⇒ ≈19.2 kbps effective), which gives
//! ≈33 µJ per transmitted byte and ≈12.5 µJ per received byte, plus a fixed
//! per-message cost for the preamble/synchronization that the MAC adds to
//! every packet. Absolute joules are not the reproduction target — the
//! figure *shapes* are — but the constants are realistic.

/// Energy accounting for message transmission and reception. All values in
/// microjoules (µJ) and bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Fixed per-message header size in bytes (§4: "a header of fixed
    /// size, followed by the body").
    pub header_bytes: u32,
    /// Energy to transmit one byte (µJ).
    pub tx_uj_per_byte: f64,
    /// Energy to receive one byte (µJ).
    pub rx_uj_per_byte: f64,
    /// Fixed per-message transmit overhead (preamble/synchronization, µJ).
    pub tx_fixed_uj: f64,
    /// Fixed per-message receive overhead (µJ).
    pub rx_fixed_uj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::mica2()
    }
}

impl EnergyModel {
    /// The default Mica2-class model (see module docs). The MAC preamble
    /// and synchronization bytes are folded into `header_bytes` — the
    /// paper's model is exactly "a header of fixed size, followed by the
    /// body", with energy spent per byte on both sending and receiving.
    pub const fn mica2() -> Self {
        EnergyModel {
            header_bytes: 12,
            tx_uj_per_byte: 33.0,
            rx_uj_per_byte: 12.5,
            tx_fixed_uj: 0.0,
            rx_fixed_uj: 0.0,
        }
    }

    /// Total on-air size of a message with the given body (bytes).
    #[inline]
    pub fn message_bytes(&self, body_bytes: u32) -> u32 {
        self.header_bytes + body_bytes
    }

    /// Energy to transmit one message with the given body size (µJ).
    #[inline]
    pub fn tx_cost_uj(&self, body_bytes: u32) -> f64 {
        self.tx_fixed_uj + f64::from(self.message_bytes(body_bytes)) * self.tx_uj_per_byte
    }

    /// Energy for one node to receive one message (µJ).
    #[inline]
    pub fn rx_cost_uj(&self, body_bytes: u32) -> f64 {
        self.rx_fixed_uj + f64::from(self.message_bytes(body_bytes)) * self.rx_uj_per_byte
    }

    /// Energy for a unicast message: one transmission plus one reception
    /// (µJ). The paper measures "the energy spent on both sending and
    /// receiving".
    #[inline]
    pub fn unicast_cost_uj(&self, body_bytes: u32) -> f64 {
        self.tx_cost_uj(body_bytes) + self.rx_cost_uj(body_bytes)
    }

    /// Energy for a local broadcast heard by `listeners` neighbors: one
    /// transmission plus `listeners` receptions (µJ). Used by the flood
    /// baseline, which "floods the entire network using broadcasts".
    #[inline]
    pub fn broadcast_cost_uj(&self, body_bytes: u32, listeners: usize) -> f64 {
        self.tx_cost_uj(body_bytes) + listeners as f64 * self.rx_cost_uj(body_bytes)
    }
}

/// Converts microjoules to the millijoules the paper's figures report.
#[inline]
pub fn uj_to_mj(uj: f64) -> f64 {
    uj / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_includes_header() {
        let m = EnergyModel::mica2();
        assert_eq!(m.message_bytes(4), 16);
        assert_eq!(m.message_bytes(0), 12);
    }

    #[test]
    fn unicast_is_tx_plus_rx() {
        let m = EnergyModel::mica2();
        let body = 12;
        assert!(
            (m.unicast_cost_uj(body) - (m.tx_cost_uj(body) + m.rx_cost_uj(body))).abs() < 1e-12
        );
    }

    #[test]
    fn broadcast_scales_with_listeners() {
        let m = EnergyModel::mica2();
        let one = m.broadcast_cost_uj(4, 1);
        let five = m.broadcast_cost_uj(4, 5);
        assert!((five - one - 4.0 * m.rx_cost_uj(4)).abs() < 1e-9);
        // Broadcast to one listener costs exactly a unicast.
        assert!((one - m.unicast_cost_uj(4)).abs() < 1e-12);
    }

    #[test]
    fn bigger_bodies_cost_more_but_share_header() {
        let m = EnergyModel::mica2();
        // Two merged units in one message are cheaper than two messages:
        // the per-message overhead is paid once.
        let merged = m.unicast_cost_uj(8);
        let separate = 2.0 * m.unicast_cost_uj(4);
        assert!(merged < separate);
    }

    #[test]
    fn unit_conversion() {
        assert!((uj_to_mj(2500.0) - 2.5).abs() < 1e-12);
    }
}
