//! Link-quality model and ETX-weighted route selection.
//!
//! §3 motivates route choice by stability: "If most parts of a route are
//! very unstable … it may be much more expensive for the communication
//! layer to traverse through pre-selected milestones". The standard
//! quality metric is ETX — the expected number of transmissions to get a
//! frame across a link, `1 / (1 − p_loss)`. This module derives a seeded
//! per-link loss map from a deployment (loss grows with distance relative
//! to the radio range, as it does physically) and offers ETX-weighted
//! multicast trees via [`weighted_routing`], so plans can prefer short
//! *reliable* routes over short lossy ones.

use std::collections::BTreeMap;

use m2m_graph::dijkstra::dijkstra;
use m2m_graph::spt::MulticastTree;
use m2m_graph::NodeId;

use crate::network::Network;
use crate::routing::{RoutingMode, RoutingTables};

/// Fixed-point ETX scale: weights handed to Dijkstra are
/// `round(etx × ETX_SCALE)` so integer shortest paths order like real
/// ETX sums.
pub const ETX_SCALE: f64 = 1000.0;

/// A per-link loss-probability map.
#[derive(Clone, Debug)]
pub struct LinkQuality {
    /// Loss probability per undirected link, keyed `(min, max)`.
    loss: BTreeMap<(NodeId, NodeId), f64>,
}

impl LinkQuality {
    /// Perfect links everywhere.
    pub fn perfect(network: &Network) -> Self {
        let loss = network.graph().edges().map(|e| (e, 0.0)).collect();
        LinkQuality { loss }
    }

    /// Distance-derived loss: a link at the full radio range loses
    /// `max_loss` of its frames; loss falls quadratically to ~0 at zero
    /// distance, plus a small seeded per-link perturbation. This mirrors
    /// the physical reality that marginal links are unreliable.
    pub fn distance_based(network: &Network, max_loss: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&max_loss), "max_loss must be in [0, 1)");
        let positions = network.deployment().positions();
        let range = network.deployment().radio_range_m();
        let loss = network
            .graph()
            .edges()
            .map(|(a, b)| {
                let dist = positions[a.index()].distance_to(&positions[b.index()]);
                let rel = if range > 0.0 {
                    (dist / range).min(1.0)
                } else {
                    0.0
                };
                let jitter = hash_unit(a.0, b.0, seed) * 0.1;
                let p = (max_loss * rel * rel + jitter * max_loss).min(0.95);
                ((a, b), p)
            })
            .collect();
        LinkQuality { loss }
    }

    /// Loss probability of link `{a, b}` (symmetric); 1.0 for non-links.
    pub fn loss(&self, a: NodeId, b: NodeId) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.loss.get(&key).copied().unwrap_or(1.0)
    }

    /// Expected transmissions to cross link `{a, b}`.
    pub fn etx(&self, a: NodeId, b: NodeId) -> f64 {
        1.0 / (1.0 - self.loss(a, b))
    }

    /// Integer Dijkstra weight of link `{a, b}`.
    pub fn weight(&self, a: NodeId, b: NodeId) -> u64 {
        (self.etx(a, b) * ETX_SCALE).round() as u64
    }

    /// Expected transmissions along a whole path.
    pub fn path_etx(&self, path: &[NodeId]) -> f64 {
        path.windows(2).map(|w| self.etx(w[0], w[1])).sum()
    }

    /// Iterates all modeled links as `((min, max), loss)`.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), f64)> + '_ {
        self.loss.iter().map(|(&k, &p)| (k, p))
    }

    /// Overrides the loss probability of link `{a, b}` (inserting the
    /// link if it was not modeled). Used by churn drivers that degrade or
    /// repair individual links over time.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn set_loss(&mut self, a: NodeId, b: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss must be in [0, 1]");
        let key = if a < b { (a, b) } else { (b, a) };
        self.loss.insert(key, p);
    }

    /// A drifted copy: each link's loss is scaled by a seeded factor in
    /// `[1 − magnitude, 1 + magnitude]` and clamped to `[0, 0.99]`. Models
    /// gradual environment-driven quality drift for churn experiments;
    /// deterministic per seed.
    #[must_use]
    pub fn with_drift(&self, magnitude: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&magnitude),
            "magnitude must be in [0, 1]"
        );
        let loss = self
            .loss
            .iter()
            .map(|(&(a, b), &p)| {
                let jitter = (hash_unit(a.0, b.0, seed) * 2.0 - 1.0) * magnitude;
                ((a, b), (p * (1.0 + jitter)).clamp(0.0, 0.99))
            })
            .collect();
        LinkQuality { loss }
    }
}

/// Deterministic unit-interval hash for per-link jitter.
fn hash_unit(a: u32, b: u32, seed: u64) -> f64 {
    let mut z = seed ^ (u64::from(a) << 32 | u64::from(b));
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds per-source multicast trees over ETX-weighted shortest paths:
/// each source's tree is its weighted shortest-path tree pruned to its
/// destinations. With perfect links this coincides with
/// [`RoutingMode::ShortestPathTrees`] up to tie-breaking.
pub fn weighted_routing(
    network: &Network,
    demands: &BTreeMap<NodeId, Vec<NodeId>>,
    quality: &LinkQuality,
) -> RoutingTables {
    let n = network.node_count();
    let trees: BTreeMap<NodeId, MulticastTree> = demands
        .iter()
        .map(|(&s, dests)| {
            let sp = dijkstra(network.graph(), s, |a, b| quality.weight(a, b));
            // Keep only nodes on some source→destination weighted path.
            let mut keep = vec![false; n];
            keep[s.index()] = true;
            let mut reached = Vec::new();
            for &d in dests {
                let Some(path) = sp.path_to(d) else { continue };
                reached.push(d);
                for v in path {
                    keep[v.index()] = true;
                }
            }
            let mut parent: Vec<Option<NodeId>> = vec![None; n];
            for i in 0..n {
                if keep[i] && i != s.index() {
                    parent[i] = sp.parent[i];
                }
            }
            (s, MulticastTree::from_parents(s, parent, reached))
        })
        .collect();
    RoutingTables::from_trees(RoutingMode::ShortestPathTrees, trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;

    fn grid_network() -> Network {
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    #[test]
    fn perfect_quality_gives_unit_etx() {
        let net = grid_network();
        let q = LinkQuality::perfect(&net);
        assert_eq!(q.loss(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(q.etx(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(q.weight(NodeId(0), NodeId(1)), ETX_SCALE as u64);
        // Non-links are unusable.
        assert_eq!(q.loss(NodeId(0), NodeId(15)), 1.0);
    }

    #[test]
    fn distance_based_loss_grows_with_distance() {
        // Mixed-length links: 10 m grid edges vs a deployment with a
        // longer diagonal-range radio.
        let net = Network::with_default_energy(Deployment::grid(3, 3, 10.0, 15.0));
        let q = LinkQuality::distance_based(&net, 0.5, 7);
        // Diagonal (~14.1 m) lossier than side (10 m) on average; compare
        // a specific pair to stay deterministic.
        let side = q.loss(NodeId(0), NodeId(1));
        let diag = q.loss(NodeId(0), NodeId(4));
        assert!(
            diag > side,
            "diagonal {diag} should lose more than side {side}"
        );
        assert!(q.etx(NodeId(0), NodeId(4)) > 1.0);
    }

    #[test]
    fn weighted_routing_avoids_lossy_links() {
        // Triangle: direct link 0-2 is terrible; detour via 1 is clean.
        let mut g = m2m_graph::Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        let net = Network::from_graph(g, crate::energy::EnergyModel::mica2());
        let mut quality = LinkQuality::perfect(&net);
        quality.loss.insert((NodeId(0), NodeId(2)), 0.8); // ETX 5
        let demands: BTreeMap<NodeId, Vec<NodeId>> =
            [(NodeId(0), vec![NodeId(2)])].into_iter().collect();
        let rt = weighted_routing(&net, &demands, &quality);
        let path = rt.tree(NodeId(0)).unwrap().path_to(NodeId(2)).unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn perfect_quality_matches_hop_routing_lengths() {
        let net = grid_network();
        let demands: BTreeMap<NodeId, Vec<NodeId>> = [(NodeId(0), vec![NodeId(15), NodeId(12)])]
            .into_iter()
            .collect();
        let q = LinkQuality::perfect(&net);
        let weighted = weighted_routing(&net, &demands, &q);
        let hops = RoutingTables::build(&net, &demands, RoutingMode::ShortestPathTrees);
        for d in [NodeId(15), NodeId(12)] {
            assert_eq!(
                weighted.tree(NodeId(0)).unwrap().path_to(d).unwrap().len(),
                hops.tree(NodeId(0)).unwrap().path_to(d).unwrap().len()
            );
        }
    }

    #[test]
    fn path_etx_sums_links() {
        let net = grid_network();
        let q = LinkQuality::perfect(&net);
        let path = [NodeId(0), NodeId(1), NodeId(2)];
        assert!((q.path_etx(&path) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = grid_network();
        let a = LinkQuality::distance_based(&net, 0.4, 5);
        let b = LinkQuality::distance_based(&net, 0.4, 5);
        for (x, y) in net.graph().edges() {
            assert_eq!(a.loss(x, y), b.loss(x, y));
        }
    }
}
