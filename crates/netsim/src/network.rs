//! The sensor network: deployment + radio graph + energy model.

use m2m_graph::bfs::{all_pairs_hops, bfs_distances, HopDistances};
use m2m_graph::{Graph, NodeId};

use crate::deployment::Deployment;
use crate::energy::EnergyModel;

/// Largest node count for which the all-pairs hop matrix is materialized
/// eagerly. The matrix is O(n²) memory (≈ 800 MB at 10k nodes, fatally
/// more at 100k); above this threshold hop queries fall back to a
/// per-call BFS with identical results. Workload generation at scale uses
/// uniform source selection, which never asks for hop distances.
pub const HOP_MATRIX_MAX_NODES: usize = 2048;

/// A simulated sensor network.
///
/// Bundles the deployment geometry, the derived unit-disk radio graph, the
/// energy model, and — for deployments up to [`HOP_MATRIX_MAX_NODES`]
/// nodes — a cached all-pairs hop-distance matrix (used heavily by
/// workload generation and routing).
#[derive(Clone, Debug)]
pub struct Network {
    deployment: Deployment,
    graph: Graph,
    energy: EnergyModel,
    /// Row `v` holds BFS distances from `v`; empty above the threshold.
    hops: Vec<HopDistances>,
}

fn hops_if_small(graph: &Graph) -> Vec<HopDistances> {
    if graph.node_count() <= HOP_MATRIX_MAX_NODES {
        all_pairs_hops(graph)
    } else {
        Vec::new()
    }
}

impl Network {
    /// Builds a network from a deployment with the given energy model.
    pub fn new(deployment: Deployment, energy: EnergyModel) -> Self {
        let graph = deployment.radio_graph();
        let hops = hops_if_small(&graph);
        Network {
            deployment,
            graph,
            energy,
            hops,
        }
    }

    /// Builds a network with the default Mica2 energy model.
    pub fn with_default_energy(deployment: Deployment) -> Self {
        Self::new(deployment, EnergyModel::mica2())
    }

    /// Builds a network from an explicit connectivity graph, bypassing
    /// geometry — used for worked examples (e.g. the paper's Figure 1
    /// topology) and tests that need an exact topology. The deployment is
    /// degenerate (all nodes at the origin).
    pub fn from_graph(graph: Graph, energy: EnergyModel) -> Self {
        let positions = vec![crate::position::Position::new(0.0, 0.0); graph.node_count()];
        let deployment = Deployment::from_positions(positions, 0.0, 0.0, 1.0);
        let hops = hops_if_small(&graph);
        Network {
            deployment,
            graph,
            energy,
            hops,
        }
    }

    /// The deployment geometry.
    #[inline]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The radio connectivity graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The energy model.
    #[inline]
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }

    /// One-hop radio neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.graph.neighbors(v)
    }

    /// Hop distance between two nodes, `None` if disconnected.
    ///
    /// O(1) from the cached matrix up to [`HOP_MATRIX_MAX_NODES`] nodes;
    /// one BFS per call above it.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        if !self.hops.is_empty() {
            self.hops[a.index()][b.index()]
        } else {
            bfs_distances(&self.graph, a)[b.index()]
        }
    }

    /// Nodes at exactly `h` hops from `v`, ascending id order.
    ///
    /// Same matrix-or-BFS behavior as [`Self::hop_distance`].
    pub fn nodes_at_hops(&self, v: NodeId, h: u32) -> Vec<NodeId> {
        let collect = |row: &[Option<u32>]| {
            row.iter()
                .enumerate()
                .filter(|&(_, d)| *d == Some(h))
                .map(|(i, _)| NodeId::from_index(i))
                .collect()
        };
        if !self.hops.is_empty() {
            collect(&self.hops[v.index()])
        } else {
            collect(&bfs_distances(&self.graph, v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;

    fn line_network() -> Network {
        // 4 nodes in a row, 10 m apart, 12 m range: a path graph.
        Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0))
    }

    #[test]
    fn line_topology_hops() {
        let net = line_network();
        assert_eq!(net.hop_distance(NodeId(0), NodeId(3)), Some(3));
        assert_eq!(net.hop_distance(NodeId(1), NodeId(1)), Some(0));
        assert_eq!(net.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn nodes_at_hops_rings() {
        let net = line_network();
        assert_eq!(net.nodes_at_hops(NodeId(0), 2), vec![NodeId(2)]);
        assert_eq!(net.nodes_at_hops(NodeId(1), 1), vec![NodeId(0), NodeId(2)]);
        assert!(net.nodes_at_hops(NodeId(0), 9).is_empty());
    }

    #[test]
    fn disconnected_pairs_have_no_distance() {
        let net = Network::with_default_energy(Deployment::grid(2, 1, 100.0, 10.0));
        assert_eq!(net.hop_distance(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn hop_queries_agree_across_the_matrix_threshold() {
        // A 60×50 grid (3000 nodes) exceeds HOP_MATRIX_MAX_NODES, so it
        // takes the per-call BFS path; a small grid with the same local
        // structure takes the matrix path. Distances must agree with the
        // geometry either way.
        let big = Network::with_default_energy(Deployment::grid(60, 50, 10.0, 12.0));
        assert!(big.node_count() > HOP_MATRIX_MAX_NODES);
        assert_eq!(big.hop_distance(NodeId(0), NodeId(59)), Some(59));
        assert_eq!(big.nodes_at_hops(NodeId(0), 1), vec![NodeId(1), NodeId(60)]);
        let small = Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0));
        assert_eq!(small.hop_distance(NodeId(0), NodeId(15)), Some(6));
    }
}
