//! The sensor network: deployment + radio graph + energy model.

use m2m_graph::bfs::{all_pairs_hops, HopDistances};
use m2m_graph::{Graph, NodeId};

use crate::deployment::Deployment;
use crate::energy::EnergyModel;

/// A simulated sensor network.
///
/// Bundles the deployment geometry, the derived unit-disk radio graph, the
/// energy model, and a cached all-pairs hop-distance matrix (used heavily
/// by workload generation and routing).
#[derive(Clone, Debug)]
pub struct Network {
    deployment: Deployment,
    graph: Graph,
    energy: EnergyModel,
    hops: Vec<HopDistances>,
}

impl Network {
    /// Builds a network from a deployment with the given energy model.
    pub fn new(deployment: Deployment, energy: EnergyModel) -> Self {
        let graph = deployment.radio_graph();
        let hops = all_pairs_hops(&graph);
        Network {
            deployment,
            graph,
            energy,
            hops,
        }
    }

    /// Builds a network with the default Mica2 energy model.
    pub fn with_default_energy(deployment: Deployment) -> Self {
        Self::new(deployment, EnergyModel::mica2())
    }

    /// Builds a network from an explicit connectivity graph, bypassing
    /// geometry — used for worked examples (e.g. the paper's Figure 1
    /// topology) and tests that need an exact topology. The deployment is
    /// degenerate (all nodes at the origin).
    pub fn from_graph(graph: Graph, energy: EnergyModel) -> Self {
        let positions = vec![crate::position::Position::new(0.0, 0.0); graph.node_count()];
        let deployment = Deployment::from_positions(positions, 0.0, 0.0, 1.0);
        let hops = all_pairs_hops(&graph);
        Network {
            deployment,
            graph,
            energy,
            hops,
        }
    }

    /// The deployment geometry.
    #[inline]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The radio connectivity graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The energy model.
    #[inline]
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }

    /// One-hop radio neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.graph.neighbors(v)
    }

    /// Hop distance between two nodes, `None` if disconnected.
    #[inline]
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        self.hops[a.index()][b.index()]
    }

    /// Nodes at exactly `h` hops from `v`, ascending id order.
    pub fn nodes_at_hops(&self, v: NodeId, h: u32) -> Vec<NodeId> {
        self.hops[v.index()]
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d == Some(h))
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;

    fn line_network() -> Network {
        // 4 nodes in a row, 10 m apart, 12 m range: a path graph.
        Network::with_default_energy(Deployment::grid(4, 1, 10.0, 12.0))
    }

    #[test]
    fn line_topology_hops() {
        let net = line_network();
        assert_eq!(net.hop_distance(NodeId(0), NodeId(3)), Some(3));
        assert_eq!(net.hop_distance(NodeId(1), NodeId(1)), Some(0));
        assert_eq!(net.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn nodes_at_hops_rings() {
        let net = line_network();
        assert_eq!(net.nodes_at_hops(NodeId(0), 2), vec![NodeId(2)]);
        assert_eq!(net.nodes_at_hops(NodeId(1), 1), vec![NodeId(0), NodeId(2)]);
        assert!(net.nodes_at_hops(NodeId(0), 9).is_empty());
    }

    #[test]
    fn disconnected_pairs_have_no_distance() {
        let net = Network::with_default_energy(Deployment::grid(2, 1, 100.0, 10.0));
        assert_eq!(net.hop_distance(NodeId(0), NodeId(1)), None);
    }
}
