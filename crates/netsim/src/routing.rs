//! Multicast routing for many-to-many aggregation.
//!
//! §2.1 fixes a multicast tree per source, rooted at the source and
//! spanning its destinations, subject to two restrictions: *minimality*
//! (pruning) and *path sharing* (two directed i→…→j paths in different
//! trees are identical). §4 builds the trees with "a standard algorithm for
//! constructing single-source multicast trees", which encourages but does
//! not guarantee sharing. We implement both:
//!
//! * [`RoutingMode::ShortestPathTrees`] — the paper's experimental setup:
//!   a canonical per-source BFS shortest-path tree pruned to the source's
//!   destinations,
//! * [`RoutingMode::SharedSpanningTree`] — all routes constrained to one
//!   global spanning tree, so the sharing restriction holds *by
//!   construction* (any i→j path in any tree is the unique tree path).
//!   This is the mode under which Theorem 1 applies unconditionally; it is
//!   used by the property tests and available to library users who want
//!   the guarantee at the cost of longer routes,
//! * [`RoutingMode::SteinerTrees`] — per-source Takahashi–Matsuyama
//!   Steiner trees, trading route length for fewer tree edges; the
//!   direction the paper's Figure 5 discussion points at.
//!
//! All three modes build straight into a flat [`RoutingForest`] (see
//! [`crate::forest`]): per-tree state lives in shared CSR slabs sized by
//! Σ|T_s| instead of one node-count-sized parent vector per source, and
//! queries go through the borrowing [`TreeView`]. Pre-built
//! [`MulticastTree`]s (milestone routing's virtual trees, link-quality
//! routing) enter through [`RoutingTables::from_trees`].

use std::collections::BTreeMap;

use m2m_graph::spt::MulticastTree;
use m2m_graph::NodeId;

pub use crate::forest::TreeView;
use crate::forest::{build_shared_forest, build_spt_forest, build_steiner_forest, RoutingForest};
use crate::network::Network;

/// Telemetry counter: routing-table constructions.
pub const ROUTING_BUILDS: &str = "routing.builds";
/// Telemetry counter: multicast trees constructed across all builds.
pub const ROUTING_TREES: &str = "routing.trees";
/// Telemetry counter: directed tree edges summed across all builds
/// (the paper's `Σ|T_s|` state bound, Theorem 3).
pub const ROUTING_TREE_EDGES: &str = "routing.tree_edges";
/// Telemetry span: wall time of [`RoutingTables::build`] in nanoseconds.
pub const ROUTING_BUILD_NS: &str = "routing.build.ns";

/// How multicast trees are constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Per-source canonical shortest-path trees (the paper's §4 setup).
    #[default]
    ShortestPathTrees,
    /// All routes restricted to a single global spanning tree; satisfies
    /// the §2.1 path-sharing restriction by construction.
    SharedSpanningTree,
    /// Per-source Takahashi–Matsuyama Steiner trees: fewer edges per tree
    /// (terminals attach to the nearest point of the growing tree) at the
    /// cost of longer individual routes. Addresses the tree-construction
    /// artifact the paper observes in its Figure 5 discussion.
    SteinerTrees,
}

/// The multicast trees for a workload: one per source, packed into a
/// [`RoutingForest`].
#[derive(Clone, Debug)]
pub struct RoutingTables {
    mode: RoutingMode,
    forest: RoutingForest,
    /// All distinct directed physical edges used by any tree, sorted —
    /// computed once at construction (trees are immutable afterwards).
    directed_edges: Vec<(NodeId, NodeId)>,
}

impl RoutingTables {
    /// Builds multicast trees for every `(source, destinations)` demand.
    ///
    /// Destinations unreachable from their source are dropped from the
    /// tree (and therefore from the plan); with connected deployments this
    /// does not occur.
    pub fn build(
        network: &Network,
        demands: &BTreeMap<NodeId, Vec<NodeId>>,
        mode: RoutingMode,
    ) -> Self {
        let _span = m2m_telemetry::span(ROUTING_BUILD_NS);
        let _stage = m2m_telemetry::timeseries::stage_span(m2m_telemetry::timeseries::STAGE_ROUTE);
        let forest = match mode {
            RoutingMode::ShortestPathTrees => build_spt_forest(network.graph(), demands),
            RoutingMode::SharedSpanningTree => build_shared_forest(network.graph(), demands),
            RoutingMode::SteinerTrees => build_steiner_forest(network.graph(), demands),
        };
        Self::from_forest(mode, forest)
    }

    /// Builds routing tables directly from pre-constructed trees (used by
    /// milestone routing, which synthesizes *virtual* trees whose edges
    /// are not radio links).
    pub fn from_trees(mode: RoutingMode, trees: BTreeMap<NodeId, MulticastTree>) -> Self {
        Self::from_forest(mode, RoutingForest::from_trees(&trees))
    }

    /// Builds routing tables around an already-packed forest.
    pub fn from_forest(mode: RoutingMode, forest: RoutingForest) -> Self {
        let mut directed_edges: Vec<(NodeId, NodeId)> =
            forest.trees().flat_map(|(_, t)| t.edges()).collect();
        directed_edges.sort_unstable();
        directed_edges.dedup();
        if m2m_telemetry::enabled() {
            m2m_telemetry::counter(ROUTING_BUILDS, 1);
            m2m_telemetry::counter(ROUTING_TREES, forest.source_count() as u64);
            let tree_edges: usize = forest
                .trees()
                .map(|(_, t)| t.size().saturating_sub(1))
                .sum();
            m2m_telemetry::counter(ROUTING_TREE_EDGES, tree_edges as u64);
        }
        RoutingTables {
            mode,
            forest,
            directed_edges,
        }
    }

    /// The routing mode the tables were built with.
    #[inline]
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// The packed forest backing these tables.
    #[inline]
    pub fn forest(&self) -> &RoutingForest {
        &self.forest
    }

    /// The multicast tree rooted at `source`, if that source has demands.
    pub fn tree(&self, source: NodeId) -> Option<TreeView<'_>> {
        self.forest.tree(source)
    }

    /// Iterator over `(source, tree)` pairs in ascending source order.
    pub fn trees(&self) -> impl Iterator<Item = (NodeId, TreeView<'_>)> {
        self.forest.trees()
    }

    /// Number of sources with routing state.
    #[inline]
    pub fn source_count(&self) -> usize {
        self.forest.source_count()
    }

    /// Sum of tree sizes, the paper's `Σ|T_s|` (Theorem 3).
    pub fn total_tree_size(&self) -> usize {
        self.forest.total_tree_size()
    }

    /// All distinct directed physical edges used by any tree, sorted.
    /// Cached at construction — calling this in a loop is free.
    #[inline]
    pub fn directed_edges(&self) -> &[(NodeId, NodeId)] {
        &self.directed_edges
    }

    /// Resident bytes of the routing state's backing storage, for the
    /// scaling benchmark's per-stage memory column.
    pub fn slab_bytes(&self) -> usize {
        self.forest.slab_bytes()
            + self.directed_edges.len() * std::mem::size_of::<(NodeId, NodeId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::network::Network;

    fn grid_network() -> Network {
        // 4×4 grid, 10 m spacing, 12 m range (no diagonals).
        Network::with_default_energy(Deployment::grid(4, 4, 10.0, 12.0))
    }

    fn demands(pairs: &[(u32, &[u32])]) -> BTreeMap<NodeId, Vec<NodeId>> {
        pairs
            .iter()
            .map(|&(s, ds)| (NodeId(s), ds.iter().map(|&d| NodeId(d)).collect()))
            .collect()
    }

    #[test]
    fn spt_mode_builds_shortest_routes() {
        let net = grid_network();
        let d = demands(&[(0, &[15])]);
        let rt = RoutingTables::build(&net, &d, RoutingMode::ShortestPathTrees);
        let tree = rt.tree(NodeId(0)).unwrap();
        let path = tree.path_to(NodeId(15)).unwrap();
        assert_eq!(
            path.len() as u32 - 1,
            net.hop_distance(NodeId(0), NodeId(15)).unwrap()
        );
    }

    #[test]
    fn shared_mode_paths_live_on_one_tree() {
        let net = grid_network();
        let d = demands(&[(0, &[15]), (3, &[12])]);
        let rt = RoutingTables::build(&net, &d, RoutingMode::SharedSpanningTree);
        // Collect the undirected edges used by each tree; they must all be
        // edges of the single global spanning tree, which has n-1 edges.
        let mut undirected: Vec<(NodeId, NodeId)> = rt
            .directed_edges()
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        undirected.sort_unstable();
        undirected.dedup();
        assert!(undirected.len() < net.node_count());
    }

    #[test]
    fn shared_mode_sharing_restriction_holds() {
        // For every pair of trees and every ordered node pair (i, j)
        // reachable in both, the directed paths must be identical (§2.1).
        let net = grid_network();
        let d = demands(&[(0, &[15, 12]), (3, &[12, 15]), (5, &[10, 15])]);
        let rt = RoutingTables::build(&net, &d, RoutingMode::SharedSpanningTree);
        let trees: Vec<_> = rt.trees().map(|(_, t)| t).collect();
        let path_between = |t: &TreeView<'_>, i: NodeId, j: NodeId| -> Option<Vec<NodeId>> {
            // Directed path i→j within the tree: j's root path must pass i.
            let pj = t.path_to(j)?;
            let pos = pj.iter().position(|&v| v == i)?;
            Some(pj[pos..].to_vec())
        };
        for a in 0..trees.len() {
            for b in (a + 1)..trees.len() {
                for &i in trees[a].nodes() {
                    for &j in trees[a].nodes() {
                        if i == j {
                            continue;
                        }
                        if let (Some(pa), Some(pb)) =
                            (path_between(&trees[a], i, j), path_between(&trees[b], i, j))
                        {
                            assert_eq!(pa, pb, "paths {i}→{j} differ between trees");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn steiner_mode_uses_no_more_edges_than_spt() {
        let net = grid_network();
        // Sources at two corners, each multicasting to the far column —
        // the regime where a Steiner tree shares a spine.
        let d = demands(&[(0, &[12, 13, 14, 15]), (3, &[12, 13, 14, 15])]);
        let spt = RoutingTables::build(&net, &d, RoutingMode::ShortestPathTrees);
        let steiner = RoutingTables::build(&net, &d, RoutingMode::SteinerTrees);
        assert!(steiner.total_tree_size() <= spt.total_tree_size());
        // Steiner trees still span every destination.
        for (_, tree) in steiner.trees() {
            assert_eq!(tree.destinations().len(), 4);
        }
    }

    #[test]
    fn trees_span_exactly_their_destinations() {
        let net = grid_network();
        let d = demands(&[(5, &[0, 3, 15])]);
        for mode in [
            RoutingMode::ShortestPathTrees,
            RoutingMode::SharedSpanningTree,
            RoutingMode::SteinerTrees,
        ] {
            let rt = RoutingTables::build(&net, &d, mode);
            let tree = rt.tree(NodeId(5)).unwrap();
            assert_eq!(tree.destinations(), &[NodeId(0), NodeId(3), NodeId(15)]);
            for &dest in tree.destinations() {
                assert!(tree.path_to(dest).is_some());
            }
        }
    }

    #[test]
    fn directed_edges_deduplicate_across_trees() {
        let net = grid_network();
        // Sources 0 and 1 both route to 15; their trees share edges.
        let d = demands(&[(0, &[15]), (1, &[15])]);
        let rt = RoutingTables::build(&net, &d, RoutingMode::ShortestPathTrees);
        let edges = rt.directed_edges();
        let mut sorted = edges.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(edges, sorted.as_slice());
    }

    #[test]
    fn source_equal_to_destination_yields_trivial_tree() {
        let net = grid_network();
        let d = demands(&[(4, &[4])]);
        let rt = RoutingTables::build(&net, &d, RoutingMode::ShortestPathTrees);
        let tree = rt.tree(NodeId(4)).unwrap();
        assert_eq!(tree.size(), 1);
        assert_eq!(tree.edges().count(), 0);
    }

    #[test]
    fn forest_matches_legacy_tree_construction() {
        // The packed forest must reproduce the tree-at-a-time oracles
        // exactly, mode by mode (the property tests widen this to random
        // deployments).
        use m2m_graph::spt::ShortestPathTree;
        let net = grid_network();
        let d = demands(&[(0, &[15, 10]), (3, &[12]), (6, &[0, 9, 11])]);
        let rt = RoutingTables::build(&net, &d, RoutingMode::ShortestPathTrees);
        for (&s, targets) in &d {
            let oracle = ShortestPathTree::build(net.graph(), s).prune_to(targets);
            let view = rt.tree(s).unwrap();
            assert_eq!(view.nodes(), oracle.nodes());
            assert_eq!(view.destinations(), oracle.destinations());
            for &v in view.nodes() {
                assert_eq!(view.parent(v), oracle.parent(v));
            }
        }
    }
}
