//! Wildlife-camera control (the paper's second §1 application).
//!
//! A habitat is instrumented with many cheap motion/vibration sensors and
//! a few expensive camera nodes. Each camera's orientation/sampling-rate
//! controller aggregates an *activity score* — a weighted sum of motion
//! readings, weighted down with distance — over sensors up to several
//! hops away ("as the cameras can shoot from a distance, the motion and
//! vibration readings may be located many hops away"). Because cameras
//! are sparse and their sensor sets overlap heavily, this is exactly the
//! regime where neither pure multicast nor pure aggregation does well.
//!
//! ```text
//! cargo run --example wildlife_cameras
//! ```

use std::collections::BTreeMap;

use m2m_core::baselines::flood_round_cost;
use m2m_core::prelude::*;

fn main() {
    let network = Network::with_default_energy(Deployment::great_duck_island(7));

    // Five cameras, spread out deterministically; every other node is a
    // motion sensor candidate.
    let n = network.node_count() as u32;
    let cameras: Vec<NodeId> = (0..5).map(|i| NodeId(i * (n / 5))).collect();

    // Each camera watches all motion sensors within 4 hops, weight 1/hops.
    let mut spec = AggregationSpec::new();
    for &cam in &cameras {
        let weights: Vec<(NodeId, f64)> = (1..=4u32)
            .flat_map(|hop| {
                network
                    .nodes_at_hops(cam, hop)
                    .into_iter()
                    .filter(|s| !cameras.contains(s))
                    .map(move |s| (s, 1.0 / f64::from(hop)))
            })
            .collect();
        spec.add_function(cam, AggregateFunction::weighted_sum(weights));
    }
    println!(
        "{} cameras, {} motion sensors, {} (sensor, camera) pairs",
        cameras.len(),
        spec.all_sources().len(),
        spec.pair_count()
    );

    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );

    // A burst of activity near the first camera: nearby sensors read high.
    let hot = cameras[0];
    let readings: BTreeMap<NodeId, f64> = network
        .nodes()
        .map(|v| {
            let dist = network.hop_distance(hot, v).unwrap_or(99);
            let activity = if dist <= 2 { 10.0 } else { 0.1 };
            (v, activity)
        })
        .collect();

    println!("\nalgorithm     energy(mJ)  messages  units");
    let mut optimal_mj = 0.0;
    for alg in Algorithm::PLANNED {
        let plan = plan_for_algorithm(&network, &spec, &routing, alg);
        let compiled =
            CompiledSchedule::compile(&network, &spec, &plan).expect("plan is schedulable");
        let mut state = ExecState::for_schedule(&compiled);
        let cost = compiled.run_round_on(&readings, &mut state);
        let results = state.result_map(&compiled);
        if alg == Algorithm::Optimal {
            optimal_mj = cost.total_mj();
            // Confirm the hot camera sees far more activity than cameras
            // far from the burst (nearby cameras may legitimately see it
            // too — node ids do not correlate with geography).
            let hot_score = results[&hot];
            for &cam in &cameras[1..] {
                if network.hop_distance(hot, cam).unwrap_or(0) > 4 {
                    assert!(results[&cam] < hot_score);
                }
            }
        }
        for (d, v) in &results {
            let expected = spec.function(*d).unwrap().reference_result(&readings);
            assert!((v - expected).abs() < 1e-9);
        }
        println!(
            "{:<12} {:>11.2} {:>9} {:>6}",
            alg.name(),
            cost.total_mj(),
            cost.messages,
            cost.units
        );
    }
    let flood = flood_round_cost(&network, &spec);
    println!(
        "{:<12} {:>11.2} {:>9} {:>6}",
        "Flood",
        flood.total_mj(),
        flood.messages,
        flood.units
    );
    println!(
        "\noptimal spends {:.1}x less than flooding",
        flood.total_mj() / optimal_mj
    );
}
