//! The paper's worked example: Figure 1(C) and its single-edge
//! optimization (Figure 2).
//!
//! Sources `a, b, c, d` route through relay `i` to relay `j`, behind which
//! sit destinations `k, l, m` with:
//!
//! ```text
//! f_k = w_ka·v_a + w_kb·v_b + w_kc·v_c + w_kd·v_d
//! f_l = w_la·v_a + w_lb·v_b + w_lc·v_c
//! f_m = w_ma·v_a
//! ```
//!
//! §2.2 shows the minimum vertex cover for edge i→j is `{a, k, l}`: send
//! `v_a` raw (it serves all three destinations) and one partial record
//! each for `k` and `l` — three message units, exactly the plan drawn in
//! Figure 1(C). This example rebuilds the topology, runs the optimizer,
//! and prints the resulting per-edge plan and node tables.
//!
//! ```text
//! cargo run --example paper_example
//! ```

use std::collections::BTreeMap;

use m2m_core::prelude::*;
use m2m_core::tables::NodeTables;
use m2m_graph::Graph;
use m2m_netsim::EnergyModel;

fn main() {
    // Node ids: a=0 b=1 c=2 d=3 i=4 j=5 k=6 l=7 m=8.
    let names = ["a", "b", "c", "d", "i", "j", "k", "l", "m"];
    let name = |v: NodeId| names[v.index()];
    let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    let (i, j) = (NodeId(4), NodeId(5));
    let (k, l, m) = (NodeId(6), NodeId(7), NodeId(8));

    let mut graph = Graph::new(9);
    for s in [a, b, c, d] {
        graph.add_edge(s, i);
    }
    graph.add_edge(i, j);
    for t in [k, l, m] {
        graph.add_edge(j, t);
    }
    let network = Network::from_graph(graph, EnergyModel::mica2());

    let mut spec = AggregationSpec::new();
    spec.add_function(
        k,
        AggregateFunction::weighted_sum([(a, 1.0), (b, 2.0), (c, 3.0), (d, 4.0)]),
    );
    spec.add_function(
        l,
        AggregateFunction::weighted_sum([(a, 5.0), (b, 6.0), (c, 7.0)]),
    );
    spec.add_function(m, AggregateFunction::weighted_sum([(a, 8.0)]));

    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);
    plan.validate(&spec, &routing).expect("plan is consistent");

    println!("per-edge plan (Figure 1(C)):");
    for ((tail, head), sol) in plan.iter_solutions() {
        let raw: Vec<&str> = sol.raw.iter().map(|&s| name(s)).collect();
        let agg: Vec<&str> = sol.agg.iter().map(|g| name(g.destination)).collect();
        println!(
            "  {}->{}: raw {{{}}}, records for {{{}}} ({} units, {} bytes)",
            name(tail),
            name(head),
            raw.join(","),
            agg.join(","),
            sol.unit_count(),
            sol.cost_bytes
        );
    }

    // The paper's headline: edge i→j carries v_a raw plus records for k
    // and l — total message size 3 units.
    let ij = plan.solution((i, j)).expect("edge i->j is in the plan");
    assert_eq!(ij.raw, vec![a]);
    let record_dests: Vec<NodeId> = ij.agg.iter().map(|g| g.destination).collect();
    assert_eq!(record_dests, vec![k, l]);
    assert_eq!(ij.unit_count(), 3);
    println!("\nedge i->j matches the paper: raw {{a}} + records {{k, l}} = 3 units");

    // §3 node tables at the relay i (where b, c, d are pre-aggregated).
    let tables = NodeTables::build(&spec, &plan);
    let state = tables.node(i).expect("relay i has state");
    println!("\nnode i state tables:");
    println!("  raw table: {} entries", state.raw.len());
    for e in &state.preagg {
        println!(
            "  pre-aggregation: w_{{{},{}}} = {}",
            name(e.destination),
            name(e.source),
            e.weight
        );
    }
    for p in &state.partial {
        println!(
            "  partial record for {}: merges {} inputs",
            name(p.destination),
            p.merge_count
        );
    }

    // Execute a round and check every destination.
    let readings: BTreeMap<NodeId, f64> =
        network.nodes().map(|v| (v, f64::from(v.0) + 1.0)).collect();
    let compiled = CompiledSchedule::compile(&network, &spec, &plan).expect("plan is schedulable");
    let mut state = ExecState::for_schedule(&compiled);
    let cost = compiled.run_round_on(&readings, &mut state);
    let results = state.result_map(&compiled);
    println!("\nround results:");
    for (dest, value) in &results {
        let expected = spec.function(*dest).unwrap().reference_result(&readings);
        assert!((value - expected).abs() < 1e-9);
        println!("  f_{} = {value}", name(*dest));
    }
    println!(
        "round energy: {:.2} mJ in {} messages (one per tree edge)",
        cost.total_mj(),
        cost.messages
    );
}
