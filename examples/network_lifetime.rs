//! Network lifetime under the four control strategies.
//!
//! §1's case for in-network control is partly about *where* energy is
//! spent: funneling everything through a base station overburdens the
//! nodes around it, and the network is only as alive as its busiest node.
//! This example charges one round of each strategy to a per-node energy
//! ledger and projects rounds-until-first-death from a 2 Ah / 3 V
//! battery.
//!
//! ```text
//! cargo run --example network_lifetime
//! ```

use m2m_core::basestation::{choose_station, BaseStationPlan};
use m2m_core::metrics::{project_lifetime, NodeEnergyLedger};
use m2m_core::prelude::*;
use m2m_core::schedule::build_schedule;
use m2m_core::workload::generate_workload;

fn main() {
    let network = Network::with_default_energy(Deployment::great_duck_island(99));
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(17, 15, 3));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let battery_uj = 2.0 * 3600.0 * 3.0 * 1e6; // 2 Ah at 3 V

    println!(
        "{} nodes, {} destinations x {} sources",
        network.node_count(),
        spec.destination_count(),
        15
    );
    println!("\nstrategy      round(mJ)  hotspot(mJ)  imbalance  lifetime(rounds)");

    let report = |name: &str, ledger: &NodeEnergyLedger| {
        let life = project_lifetime(ledger, battery_uj);
        println!(
            "{name:<13} {:>8.1} {:>12.2} {:>10.1} {:>17.0}",
            ledger.total_uj() / 1000.0,
            ledger.hotspot().1 / 1000.0,
            life.imbalance,
            life.rounds_until_first_death
        );
    };

    for alg in Algorithm::PLANNED {
        let plan = plan_for_algorithm(&network, &spec, &routing, alg);
        let schedule = build_schedule(&spec, &plan).unwrap();
        let mut ledger = NodeEnergyLedger::new(network.node_count());
        schedule.charge_round(network.energy(), &mut ledger);
        report(alg.name(), &ledger);
    }

    let station = choose_station(&network);
    let bs = BaseStationPlan::build(&network, &spec, station);
    let (_, ledger) = bs.round_cost(&network);
    report("BaseStation", &ledger);
    println!(
        "\nbase station at {station}; its hotspot is {} hop(s) away",
        network.hop_distance(station, ledger.hotspot().0).unwrap()
    );
}
