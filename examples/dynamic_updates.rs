//! Dynamic adaptation: Corollary 1 in action.
//!
//! When the workload changes — a sensor dies, a new one is deployed, a
//! controller re-tunes its inputs — only the edges whose single-edge
//! optimization inputs changed need new plans (Corollary 1). This example
//! applies a sequence of updates through [`PlanMaintainer`] and reports,
//! for each, how much of the plan survived untouched — the property that
//! makes in-network plan dissemination affordable.
//!
//! ```text
//! cargo run --example dynamic_updates
//! ```

use m2m_core::dynamics::{PlanMaintainer, WorkloadUpdate};
use m2m_core::prelude::*;
use m2m_core::workload::{generate_workload, WorkloadConfig};

fn main() {
    let network = Network::with_default_energy(Deployment::great_duck_island(31));
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(14, 15, 8));
    let mut maintainer = PlanMaintainer::new(network.clone(), spec, RoutingMode::ShortestPathTrees);
    println!(
        "initial plan: {} edges, {} payload bytes/round",
        maintainer.plan().solutions().len(),
        maintainer.plan().total_payload_bytes()
    );

    // A sequence of realistic churn events.
    let d0 = maintainer.spec().destinations().next().unwrap();
    let new_source = maintainer
        .spec()
        .all_sources()
        .into_iter()
        .find(|&s| !maintainer.spec().is_source_of(s, d0) && s != d0)
        .unwrap();
    let dying_source = maintainer
        .spec()
        .function(d0)
        .unwrap()
        .sources()
        .next()
        .unwrap();
    let fresh_dest = network
        .nodes()
        .find(|&v| maintainer.spec().function(v).is_none())
        .unwrap();
    let fresh_sources: Vec<(NodeId, f64)> = maintainer
        .spec()
        .all_sources()
        .into_iter()
        .filter(|&s| s != fresh_dest)
        .take(10)
        .map(|s| (s, 1.0))
        .collect();

    let updates: Vec<(&str, WorkloadUpdate)> = vec![
        (
            "add one source to an existing function",
            WorkloadUpdate::AddSource {
                destination: d0,
                source: new_source,
                weight: 1.0,
            },
        ),
        (
            "remove a dying sensor from a function",
            WorkloadUpdate::RemoveSource {
                destination: d0,
                source: dying_source,
            },
        ),
        (
            "deploy a brand new controller",
            WorkloadUpdate::AddDestination {
                destination: fresh_dest,
                function: AggregateFunction::weighted_average(fresh_sources),
            },
        ),
        (
            "retire that controller again",
            WorkloadUpdate::RemoveDestination {
                destination: fresh_dest,
            },
        ),
    ];

    println!("\nupdate                                       re-solved  reused  locality");
    for (label, update) in updates {
        let stats = maintainer.apply(update);
        println!(
            "{label:<44} {:>9} {:>7} {:>7.0}%",
            stats.edges_reoptimized,
            stats.edges_reused,
            stats.reuse_fraction() * 100.0
        );
        maintainer
            .plan()
            .validate(maintainer.spec(), maintainer.routing())
            .expect("plan stays consistent across updates");
    }

    println!(
        "\nfinal plan: {} edges, {} payload bytes/round",
        maintainer.plan().solutions().len(),
        maintainer.plan().total_payload_bytes()
    );
}
