//! In-network control of sap flux sensors (the paper's §1 motivating
//! application).
//!
//! Sap flux sensors heat a prong inserted into a tree — far more expensive
//! than passive sensing — so they should sample fast only when conditions
//! suggest sap flow is changing: daylight rising or falling, and soil
//! moisture available. Those conditions are measured cheaply by light and
//! soil-moisture sensors at *other* nodes; each sap flux sensor's control
//! signal is a weighted average of nearby cheap sensors. One light sensor
//! feeds many sap flux controllers — many-to-many aggregation.
//!
//! This example runs a simulated day: light follows a diurnal curve and
//! soil moisture decays slowly, the control signals are recomputed
//! in-network each round, and — because weighted averages are
//! delta-maintainable — temporal suppression skips quiet periods (night),
//! with the override policies saving further energy.
//!
//! ```text
//! cargo run --example sap_flux_control
//! ```

use std::collections::BTreeMap;

use m2m_core::prelude::*;
use m2m_core::suppression::{OverridePolicy, SuppressionSim};

fn main() {
    // The paper's deployment stand-in: 68 nodes on Great Duck Island.
    let network = Network::with_default_energy(Deployment::great_duck_island(2024));

    // Every 6th node hosts a sap flux sensor (destination); the rest are
    // cheap light/soil-moisture sensors. Each controller averages the
    // cheap sensors within its 2-hop neighborhood, weighting 1-hop
    // readings double.
    let mut spec = AggregationSpec::new();
    let controllers: Vec<NodeId> = network.nodes().filter(|v| v.0 % 6 == 0).collect();
    for &ctl in &controllers {
        let mut weights: Vec<(NodeId, f64)> = Vec::new();
        for hop in 1..=2u32 {
            for s in network.nodes_at_hops(ctl, hop) {
                if !controllers.contains(&s) {
                    weights.push((s, if hop == 1 { 2.0 } else { 1.0 }));
                }
            }
        }
        if weights.len() >= 3 {
            spec.add_function(ctl, AggregateFunction::weighted_average(weights));
        }
    }
    println!(
        "{} sap flux controllers, {} cheap sensors contributing, {} (sensor, controller) pairs",
        spec.destination_count(),
        spec.all_sources().len(),
        spec.pair_count()
    );

    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);
    plan.validate(&spec, &routing).expect("plan is consistent");
    // Lower the schedule once; every hourly round reuses the arrays.
    let compiled = CompiledSchedule::compile(&network, &spec, &plan).expect("plan is schedulable");
    let mut state = ExecState::for_schedule(&compiled);

    // One simulated day, one round per hour. Light: diurnal sine clipped
    // at zero; soil moisture: slow decay from a morning watering.
    println!("\nhour  mean-control  round-energy(mJ)");
    let mut total_mj = 0.0;
    for hour in 0..24u32 {
        let daylight = (std::f64::consts::PI * (f64::from(hour) - 6.0) / 12.0).sin();
        let light = daylight.max(0.0) * 100.0;
        let moisture = 40.0 - f64::from(hour) * 0.8;
        let readings: BTreeMap<NodeId, f64> = network
            .nodes()
            .map(|v| {
                // Even ids are light sensors, odd ids soil moisture.
                let value = if v.0 % 2 == 0 { light } else { moisture };
                (v, value + f64::from(v.0 % 5) * 0.1)
            })
            .collect();
        let cost = compiled.run_round_on(&readings, &mut state);
        let results = state.result_map(&compiled);
        let mean: f64 = results.values().sum::<f64>() / results.len() as f64;
        total_mj += cost.total_mj();
        if hour % 4 == 0 {
            println!("{hour:>4}  {mean:>12.2}  {:>16.2}", cost.total_mj());
        }
        // Spot-check correctness every round.
        for (d, v) in &results {
            let expected = spec.function(*d).unwrap().reference_result(&readings);
            assert!((v - expected).abs() < 1e-9);
        }
    }
    println!("full-recomputation day total: {total_mj:.1} mJ");

    // With temporal suppression, only rounds where values actually change
    // cost energy. At night nothing changes; daytime changes are gradual.
    let sim = SuppressionSim::new(&network, &spec, &routing, &plan);
    println!("\nsuppression (fraction of sensors changing per round):");
    for p in [0.05, 0.2, 0.5] {
        let base = sim.average_cost(&spec, p, 24, OverridePolicy::None, 1);
        let agg = sim.average_cost(&spec, p, 24, OverridePolicy::Aggressive, 1);
        let cons = sim.average_cost(&spec, p, 24, OverridePolicy::Conservative, 1);
        println!(
            "  p={p:.2}: default {:.1} mJ, aggressive {:.1} mJ, conservative {:.1} mJ",
            base.total_mj(),
            agg.total_mj(),
            cons.total_mj()
        );
    }
}
