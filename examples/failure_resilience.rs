//! Failure handling end to end (§3): TDMA slots, retransmissions under
//! transient link failures, critical-link analysis, and the milestone
//! trade-off.
//!
//! ```text
//! cargo run --example failure_resilience
//! ```

use m2m_core::exec::CompiledSchedule;
use m2m_core::milestones::{build_milestone_routing, expected_round_cost, MilestoneConfig};
use m2m_core::plan::GlobalPlan;
use m2m_core::prelude::*;
use m2m_core::resilience::{average_over_rounds, critical_links, messages_on_critical_links};
use m2m_core::slots::assign_slots;
use m2m_core::workload::generate_workload;
use m2m_netsim::failure::DeliveryModel;

fn main() {
    let network = Network::with_default_energy(Deployment::great_duck_island(77));
    let spec = generate_workload(&network, &WorkloadConfig::paper_default(14, 15, 2));
    let routing = RoutingTables::build(
        &network,
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    let plan = GlobalPlan::build(&network, &spec, &routing);
    let compiled = CompiledSchedule::compile(&network, &spec, &plan).expect("schedulable");
    let slots = assign_slots(&network, compiled.schedule());

    println!(
        "plan: {} | slots: {} (radio-on {:.0}% of round)",
        plan.summary(),
        slots.slot_count,
        slots.listen_fraction(compiled.schedule(), &network) * 100.0
    );

    // Critical links: bridges of the radio graph have no detour.
    let bridges = critical_links(&network);
    let risky = messages_on_critical_links(&network, compiled.schedule());
    println!(
        "critical links: {} of {} radio links; {} of {} messages cross one",
        bridges.len(),
        network.graph().edge_count(),
        risky.len(),
        compiled.schedule().messages.len()
    );

    // Retransmissions under increasing failure rates.
    println!("\nfailure_p  slots  retransmissions  energy(mJ)  delivery");
    for p in [0.0, 0.1, 0.2, 0.4] {
        let model = DeliveryModel::uniform(p, 11);
        let (mean_slots, retx, energy, delivery) =
            average_over_rounds(&network, &compiled, &model, 20, 10_000);
        println!(
            "{p:>9.1} {mean_slots:>6.1} {retx:>16.1} {:>11.2} {delivery:>9.2}",
            energy / 1000.0
        );
    }

    // Milestones: pinned hops vs flexible segments as links get flaky.
    println!("\nmilestone spacing vs expected round energy (mJ):");
    println!("failure_p  pinned(1)  spacing 3");
    let pinned_cfg = MilestoneConfig {
        spacing: 1,
        detour_overhead: 0.5,
    };
    let flex_cfg = MilestoneConfig {
        spacing: 3,
        detour_overhead: 0.5,
    };
    let pinned = build_milestone_routing(&network, &routing, &pinned_cfg);
    let flexible = build_milestone_routing(&network, &routing, &flex_cfg);
    let pinned_plan = GlobalPlan::build_unchecked(&spec, &pinned.routing);
    let flex_plan = GlobalPlan::build_unchecked(&spec, &flexible.routing);
    for p in [0.0, 0.2, 0.4, 0.6] {
        let a = expected_round_cost(&pinned_plan, &pinned, network.energy(), p, &pinned_cfg);
        let b = expected_round_cost(&flex_plan, &flexible, network.energy(), p, &flex_cfg);
        println!("{p:>9.1} {:>10.1} {:>10.1}", a.total_mj(), b.total_mj());
    }
    println!("\npinned routing wins on reliable links; flexibility wins as p grows.");
}
