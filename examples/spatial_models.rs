//! In-network model maintenance (§5, "Models").
//!
//! "Maintaining multiple such models in-network requires many-to-many
//! communication. If the associated computation can be expressed as
//! aggregation functions, then our approach may be appropriate for
//! supporting these in-network models."
//!
//! This example maintains a *spatial linear regression* at several model
//! nodes: each regresses its neighborhood's readings `y` against the
//! nodes' x-coordinates, predicting the local gradient of the sensed
//! field. Ordinary least squares needs four sums over the same sources —
//! `Σw`, `Σwx`, `Σwy`, `Σwxy` (and `Σwx²`) — i.e. *five aggregation
//! functions per destination*, which is exactly what the
//! [`m2m_core::multi`] lift provides on top of the one-function planner.
//!
//! ```text
//! cargo run --example spatial_models
//! ```

use std::collections::BTreeMap;

use m2m_core::multi::{MultiPlan, MultiSpec};
use m2m_core::prelude::*;

fn main() {
    let network = Network::with_default_energy(Deployment::great_duck_island(12));
    let positions = network.deployment().positions().to_vec();

    // Model nodes: every 10th node maintains a regression over its ≤2-hop
    // neighborhood.
    let model_nodes: Vec<NodeId> = network.nodes().filter(|v| v.0 % 10 == 0).collect();
    let mut multi = MultiSpec::new();
    let mut neighborhoods: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &m in &model_nodes {
        let mut sources: Vec<NodeId> = (1..=2u32)
            .flat_map(|h| network.nodes_at_hops(m, h))
            .collect();
        sources.truncate(12);
        if sources.len() < 4 {
            continue;
        }
        neighborhoods.insert(m, sources.clone());
        // The five sufficient statistics of OLS as weighted sums. The x
        // regressor is each source's x-coordinate; readings supply y.
        // Σ1 (count), Σx, Σx² use constant pseudo-readings via weights;
        // Σy and Σxy weight the real readings.
        let unit: Vec<(NodeId, f64)> = sources.iter().map(|&s| (s, 1.0)).collect();
        let xs: Vec<(NodeId, f64)> = sources
            .iter()
            .map(|&s| (s, positions[s.index()].x))
            .collect();
        multi.add_function(
            m,
            AggregateFunction::new(AggregateKind::Count, unit.clone()),
        );
        // Σx and Σx² are data-independent; computing them in-network with
        // constant readings keeps the whole model in one machinery.
        multi.add_function(m, AggregateFunction::weighted_sum(xs.clone()));
        multi.add_function(
            m,
            AggregateFunction::weighted_sum(
                sources
                    .iter()
                    .map(|&s| (s, positions[s.index()].x * positions[s.index()].x))
                    .collect::<Vec<_>>(),
            ),
        );
        multi.add_function(m, AggregateFunction::weighted_sum(unit)); // Σy (weight 1 per reading)
        multi.add_function(m, AggregateFunction::weighted_sum(xs)); // Σxy (weight x per reading)
    }
    println!(
        "{} model nodes, {} aggregation functions, {} layers",
        neighborhoods.len(),
        multi.function_count(),
        multi.layers().len()
    );

    let plan = MultiPlan::build(&network, &multi, RoutingMode::ShortestPathTrees);

    // A synthetic field with a known gradient: y = 0.8·x + noise-free
    // offset, so every regression should recover slope ≈ 0.8. The Σ1, Σx,
    // Σx² functions run over constant readings of 1.0.
    let field_readings: BTreeMap<NodeId, f64> = network
        .nodes()
        .map(|v| (v, 0.8 * positions[v.index()].x + 5.0))
        .collect();
    let unit_readings: BTreeMap<NodeId, f64> = network.nodes().map(|v| (v, 1.0)).collect();

    // Functions 0..3 in each node's block run on unit readings (their
    // weights encode the regressors); functions 3..5 run on the field.
    // Execute both rounds and stitch the statistics per model node.
    let (unit_results, cost_a) = plan.execute_round(&multi, &unit_readings);
    let (field_results, cost_b) = plan.execute_round(&multi, &field_readings);

    println!("\nmodel    n    slope(est)  slope(true)");
    let mut i = 0;
    for &m in neighborhoods.keys() {
        let n = unit_results[i]; // Σ1
        let sx = unit_results[i + 1]; // Σx
        let sxx = unit_results[i + 2]; // Σx²
        let sy = field_results[i + 3]; // Σy
        let sxy = field_results[i + 4]; // Σxy
        i += 5;
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        println!("{m:>5} {n:>4.0} {slope:>12.4} {:>12.4}", 0.8);
        assert!(
            (slope - 0.8).abs() < 1e-6,
            "in-network OLS must recover the planted gradient"
        );
    }
    println!(
        "\nround energy: {:.2} mJ (statistics) + {:.2} mJ (field) per timestep",
        cost_a.total_mj(),
        cost_b.total_mj()
    );
    println!("(Σ1, Σx, Σx² are static and could be computed once, amortizing the first term.)");
}
