//! Quickstart: build a network, declare two aggregation functions, let the
//! optimizer balance multicast against in-network aggregation, and execute
//! one round through the [`Session`] facade.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::collections::BTreeMap;

use m2m_core::prelude::*;

fn main() {
    // A 5×5 grid of sensors, 10 m apart, with a 12 m radio range.
    let network = Network::with_default_energy(Deployment::grid(5, 5, 10.0, 12.0));
    println!(
        "network: {} nodes, {} radio links",
        network.node_count(),
        network.graph().edge_count()
    );

    // Two control points, each aggregating a weighted average of readings
    // at other nodes. Node 12 (the grid center) watches four corners-ish
    // nodes; node 4 watches an overlapping set — the many-to-many part.
    let mut spec = AggregationSpec::new();
    spec.add_function(
        NodeId(12),
        AggregateFunction::weighted_average([
            (NodeId(0), 1.0),
            (NodeId(4), 0.5),
            (NodeId(20), 1.5),
            (NodeId(24), 1.0),
        ]),
    );
    spec.add_function(
        NodeId(4),
        AggregateFunction::weighted_average([
            (NodeId(0), 2.0),
            (NodeId(20), 1.0),
            (NodeId(22), 1.0),
        ]),
    );

    // One Session wires routing, the per-edge optimal plan, and the
    // compiled executor together; `Config` would add thread/trace/retry
    // knobs here if the defaults ever need overriding.
    let mut session = Session::builder(network, spec.clone())
        .routing_mode(RoutingMode::ShortestPathTrees)
        .build();
    let plan = session.driver().maintainer().plan();
    println!(
        "plan: {} edges, {} message units, {} payload bytes/round, {} repairs",
        plan.solutions().len(),
        plan.total_units(),
        plan.total_payload_bytes(),
        plan.repair_count()
    );

    // Execute one round on synthetic readings and verify the results
    // against direct computation.
    let readings: BTreeMap<NodeId, f64> = session
        .network()
        .nodes()
        .map(|v| (v, 20.0 + f64::from(v.0 % 7)))
        .collect();
    let report = session.run(&readings);
    for (dest, value) in &report.result_map() {
        let expected = spec.function(*dest).unwrap().reference_result(&readings);
        println!("destination {dest}: aggregate = {value:.4} (expected {expected:.4})");
        assert!((value - expected).abs() < 1e-9);
    }
    println!(
        "round energy: {:.2} mJ across {} messages",
        report.cost().total_mj(),
        report.cost().messages
    );

    // Compare with the single-technique baselines.
    let routing = RoutingTables::build(
        session.network(),
        &spec.source_to_destinations(),
        RoutingMode::ShortestPathTrees,
    );
    for alg in [Algorithm::Multicast, Algorithm::Aggregation] {
        let baseline = plan_for_algorithm(session.network(), &spec, &routing, alg);
        let compiled = CompiledSchedule::compile(session.network(), &spec, &baseline)
            .expect("baseline plan is schedulable");
        println!(
            "{:<12} {:.2} mJ",
            alg.name(),
            compiled.round_cost().total_mj()
        );
    }
}
