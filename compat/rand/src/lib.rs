//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`]),
//! [`RngExt::random_range`] over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic from the seed. Streams do *not*
//! match the crates.io `rand` crate, so seeded outputs are reproducible
//! within this workspace but not against artifacts produced elsewhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The one method every other facility
/// in this crate is derived from.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling conveniences, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples uniformly from the given range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<G: Rng> RngExt for G {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits → the full double mantissa range.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by widening multiply (bias ≤ 2⁻⁶⁴,
/// far below anything observable here).
#[inline]
fn bounded(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Only `f64` on purpose: an `f32` impl would leave untyped literal
// ranges like `-1.0..1.0` ambiguous at call sites.
impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The pseudo-random generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic from its seed, 2²⁵⁶−1 period, passes the usual
    /// statistical batteries. Not cryptographic — exactly like the real
    /// `StdRng`, it is for simulation only.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random rearrangement of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<G: Rng>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: Rng>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u32..1000) == b.random_range(0u32..1000))
            .count();
        assert!(same < 8, "streams nearly identical: {same}/64 collisions");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(-3i32..17);
            assert!((-3..17).contains(&x));
            let y = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.random_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }
}
