//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses: the [`proptest!`] macro family, the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range / tuple / collection
//! strategies, [`arbitrary::any`], and [`test_runner::ProptestConfig`].
//!
//! Cases are generated from a deterministic per-test RNG; a failing case
//! panics with the full generated value. Unlike the real crate there is
//! **no shrinking** — the first counterexample is reported as-is — and
//! no persistence of failing seeds.
//!
//! [`Strategy`]: strategy::Strategy

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated cases.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`ProptestConfig`](test_runner::ProptestConfig) for every test in the
/// block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run_named(stringify!($name), &strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case (without panicking out of the generator loop)
/// if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted) if the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
