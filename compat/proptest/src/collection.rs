//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// Generates `Vec`s of values from `element`, with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeMap`s from key/value strategies, with an entry count
/// drawn from `size`. Duplicate keys collapse, so the realized size may
/// be below the drawn target (matching real-proptest behavior closely
/// enough for this workspace's tests).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
