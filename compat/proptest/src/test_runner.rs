//! Case generation and execution: config, RNG, error type, runner.

use crate::strategy::Strategy;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion — the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!` — regenerated, not counted.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (assumption not met).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic generation RNG (xoshiro256++, seeded per test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, span)` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs one property over generated cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` over `config.cases` generated values of `strategy`,
    /// panicking (with the offending input) on the first failure.
    ///
    /// The RNG is seeded from `name`, so every test function gets its own
    /// deterministic stream and failures are reproducible run-to-run.
    pub fn run_named<S: Strategy>(
        &mut self,
        name: &str,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        // FNV-1a over the test name → per-test seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng::seed_from_u64(seed);

        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        while accepted < self.config.cases {
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest '{name}': {rejected} cases rejected by prop_assume! \
                         (only {accepted} accepted) — assumption too strong"
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest '{name}' failed after {accepted} passing case(s)\n\
                     {msg}\ninput: {repr}"
                ),
            }
        }
    }
}
