//! `any::<T>()` — full-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning a broad magnitude range.
        let mag = rng.unit_f64();
        let exp = rng.below(64) as i32 - 32;
        let v = mag * (2.0f64).powi(exp);
        if rng.next_u64() & 1 == 1 {
            -v
        } else {
            v
        }
    }
}
