//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace uses: ranges, tuples, `Just`, `prop_map`, `prop_flat_map`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking —
/// `generate` draws one complete value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into a strategy-producing function —
    /// dependent generation.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
