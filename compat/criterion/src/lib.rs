//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses: benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing model: each benchmark is warmed up briefly, then `sample_size`
//! samples are taken; each sample runs the closure enough times to fill
//! a minimum measurement window, and the per-iteration time is the
//! sample's mean. The reported statistic is the median across samples,
//! with min/max as the spread. Results are printed to stdout in a
//! stable, machine-greppable single-line format:
//!
//! ```text
//! bench: <group>/<id> ... median <t> ns (min <t> ns, max <t> ns, N samples)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Minimum wall-clock window per sample; short enough to keep whole
/// suites quick on small containers, long enough to swamp timer noise.
const SAMPLE_WINDOW: Duration = Duration::from_millis(4);

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration (`--bench` is accepted and
    /// ignored; the first free argument becomes a substring filter, as
    /// with the real crate).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--profile-time" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') && self.filter.is_none() => {
                    self.filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 30,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.filter.as_deref(), id, 30, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter
            .as_deref()
            .is_none_or(|needle| full_id.contains(needle))
    }
}

/// A named benchmark id, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter (the group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_one(None, &full, self.sample_size, |b| f(b, input));
        }
        self
    }

    /// Benchmarks a closure under a plain string id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_one(None, &full, self.sample_size, f);
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many iterations fill the window?
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= SAMPLE_WINDOW || iters_per_sample >= 1 << 20 {
                break;
            }
            let scale = (SAMPLE_WINDOW.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .ceil()
                .min(1024.0) as u64;
            iters_per_sample = (iters_per_sample * scale.max(2)).min(1 << 20);
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let per_iter = t0.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(per_iter);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(filter: Option<&str>, id: &str, sample_size: usize, mut f: F) {
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    let mut b = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("bench: {id} ... no samples recorded");
        return;
    }
    b.samples_ns.sort_by(|x, y| x.total_cmp(y));
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let min = b.samples_ns[0];
    let max = *b.samples_ns.last().expect("nonempty");
    println!(
        "bench: {id} ... median {} (min {}, max {}, {} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        b.samples_ns.len()
    );
}

/// Formats nanoseconds with a human-friendly unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
